/**
 * @file
 * The built-in litmus suite, unmutated: every program under several
 * seeds must complete, never hit its forbidden outcome, and produce a
 * trace the axiomatic checker accepts. Two independent oracles — the
 * outcome predicate and the trace replay — must both stay green.
 */

#include <gtest/gtest.h>

#include "check/litmus.h"
#include "sim/logging.h"

namespace piranha {
namespace {

struct SuiteParam
{
    std::size_t prog;
    std::uint64_t seed;
    bool parallel; //!< drive the run with the parallel engine
};

class LitmusSuiteTest : public ::testing::TestWithParam<SuiteParam>
{
};

TEST_P(LitmusSuiteTest, CleanRunHasNoViolations)
{
    const LitmusProgram &prog =
        builtinLitmusPrograms()[GetParam().prog];
    LitmusRunOptions opt;
    opt.seed = GetParam().seed;
    opt.parallel = GetParam().parallel;
    LitmusResult res = runLitmus(prog, opt);

    ASSERT_TRUE(res.completed) << prog.name << ": run did not converge";
    EXPECT_FALSE(res.forbiddenHit)
        << prog.name << ": forbidden outcome (" << prog.forbiddenDesc
        << ")";
    EXPECT_TRUE(res.report.ok()) << prog.name << ":\n"
                                 << res.report.summary(res.trace);
#if PIRANHA_COHERENCE_TRACE
    // The run must actually have produced protocol events (not just
    // the harness's Init/Marker records).
    EXPECT_TRUE(res.report.sawSettleMarker);
    EXPECT_GT(res.trace.size(),
              std::size_t(prog.locs.size()) * (lineBytes / 8) + 1);
#endif
}

std::vector<SuiteParam>
allParams()
{
    std::vector<SuiteParam> out;
    for (std::size_t p = 0; p < builtinLitmusPrograms().size(); ++p)
        for (std::uint64_t seed = 1; seed <= 8; ++seed) {
            out.push_back({p, seed, false});
            out.push_back({p, seed, true});
        }
    return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, LitmusSuiteTest, ::testing::ValuesIn(allParams()),
    [](const ::testing::TestParamInfo<SuiteParam> &info) {
        std::string name =
            builtinLitmusPrograms()[info.param.prog].name;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return strFormat("%s_seed%llu%s", name.c_str(),
                         (unsigned long long)info.param.seed,
                         info.param.parallel ? "_parallel" : "");
    });

} // namespace
} // namespace piranha
