/**
 * @file
 * CPU timing-model tests: in-order accounting (full stalls), the
 * out-of-order model's issue-width and overlap-credit behavior, the
 * instruction-fetch stream, and end-to-end Core-on-chip runs.
 */

#include <gtest/gtest.h>

#include <deque>

#include "cpu/core.h"
#include "test_system.h"

namespace piranha {
namespace {

/** Scripted stream for driving a core deterministically. */
class ScriptStream : public InstrStream
{
  public:
    std::deque<StreamOp> ops;
    std::uint64_t done = 0;

    StreamOp
    next() override
    {
        if (ops.empty())
            return StreamOp{};
        StreamOp op = ops.front();
        ops.pop_front();
        ++done;
        return op;
    }

    std::uint64_t workDone() const override { return done; }

    void
    compute(unsigned n, Addr pc = 0x1000)
    {
        StreamOp op;
        op.kind = StreamOp::Kind::Compute;
        op.count = n;
        op.pc = pc;
        ops.push_back(op);
    }

    void
    load(Addr a, Addr pc = 0x1000)
    {
        StreamOp op;
        op.kind = StreamOp::Kind::Load;
        op.addr = a;
        op.pc = pc;
        ops.push_back(op);
    }
};

struct CoreHarness
{
    TestSystem sys{1, 1};
    ScriptStream stream;
    std::unique_ptr<Core> core;

    explicit CoreHarness(CoreParams p = CoreParams{})
    {
        core = std::make_unique<Core>(
            sys.eq, "cpu", sys.chips[0]->clock(),
            sys.chips[0]->dl1(0), sys.chips[0]->il1(0), p);
    }

    void
    run()
    {
        core->start(&stream);
        sys.eq.run();
        EXPECT_TRUE(core->done());
    }
};

TEST(Core, ComputeTimeMatchesClock)
{
    CoreHarness h;
    h.stream.compute(1000);
    h.run();
    // 1000 single-cycle instructions at 500 MHz = 2 us, plus the
    // ifetch for the first line.
    EXPECT_NEAR(static_cast<double>(h.core->accountedTime()),
                1000.0 * 2000.0, 0.2e6);
    EXPECT_EQ(h.core->statInstrs.value(), 1000.0);
}

TEST(Core, InOrderChargesFullMissLatency)
{
    CoreHarness h;
    h.stream.load(0x5000000);
    h.run();
    // A cold local-memory miss: ~80 ns charged (no overlap).
    EXPECT_GT(h.core->statL2MissStall.value(), 60e3);
}

TEST(Core, WideIssueShrinksBusyTime)
{
    CoreParams ooo;
    ooo.issueWidth = 4;
    ooo.windowSize = 64;
    ooo.ilp = WorkloadIlp{4.0, 0.0};
    CoreHarness wide(ooo), narrow;
    wide.stream.compute(4000);
    narrow.stream.compute(4000);
    wide.run();
    narrow.run();
    double ratio = narrow.core->statBusy.value() /
                   wide.core->statBusy.value();
    EXPECT_NEAR(ratio, 4.0, 0.5);
}

TEST(Core, IlpCeilingLimitsIssueWidth)
{
    CoreParams ooo;
    ooo.issueWidth = 4;
    ooo.windowSize = 64;
    ooo.ilp = WorkloadIlp{1.45, 0.0}; // OLTP-like: little ILP
    CoreHarness h(ooo), base;
    h.stream.compute(4000);
    base.stream.compute(4000);
    h.run();
    base.run();
    double ratio = base.core->statBusy.value() /
                   h.core->statBusy.value();
    EXPECT_NEAR(ratio, 1.45, 0.2);
}

TEST(Core, OverlapHidesMissLatency)
{
    CoreParams ooo;
    ooo.issueWidth = 4;
    ooo.windowSize = 64;
    ooo.ilp = WorkloadIlp{2.0, 0.8};
    CoreHarness h(ooo), inorder;
    h.stream.load(0x5000000);
    inorder.stream.load(0x5000000);
    h.run();
    inorder.run();
    EXPECT_LT(h.core->statL2MissStall.value(),
              0.5 * inorder.core->statL2MissStall.value());
}

TEST(Core, FractionalCyclesCarryAcrossComputeBlocks)
{
    // ilp 3.0 on a 4-wide core: each 1-instruction block costs 1/3
    // cycle = 666.67 ticks at 500 MHz. Per-block truncation used to
    // lose the fractional 2/3 tick every block (3000 blocks: 1998000
    // ticks of accounted busy time instead of 2000000); the carried
    // remainder must keep the long-run total exact.
    CoreParams ooo;
    ooo.issueWidth = 4;
    ooo.windowSize = 64;
    ooo.ilp = WorkloadIlp{3.0, 0.0};
    CoreHarness h(ooo);
    for (int i = 0; i < 3000; ++i)
        h.stream.compute(1);
    h.run();
    EXPECT_NEAR(h.core->statBusy.value(), 2000000.0, 10.0);
}

TEST(Core, IfetchFollowsPcLines)
{
    CoreHarness h;
    // 8 compute runs on distinct lines, then 8 on the same line.
    for (int i = 0; i < 8; ++i)
        h.stream.compute(4, 0x2000000 + i * 64);
    for (int i = 0; i < 8; ++i)
        h.stream.compute(4, 0x3000000);
    h.run();
    EXPECT_EQ(h.core->statIfetches.value(), 9.0);
}

TEST(Core, IdleAccounted)
{
    CoreHarness h;
    StreamOp idle;
    idle.kind = StreamOp::Kind::Idle;
    idle.count = 500;
    h.stream.ops.push_back(idle);
    h.run();
    EXPECT_NEAR(h.core->statIdle.value(), 500 * 2000.0, 2000.0);
}

TEST(Core, StoresRetireThroughStoreBuffer)
{
    CoreHarness h;
    StreamOp st;
    st.kind = StreamOp::Kind::Store;
    st.addr = 0x6000000;
    st.value = 77;
    st.pc = 0x1000;
    h.stream.ops.push_back(st);
    h.stream.compute(10);
    h.run();
    EXPECT_EQ(h.core->statStores.value(), 1.0);
    // The store must land in memory-visible state.
    EXPECT_EQ(h.sys.load(0, 0, 0x6000000), 77u);
}

} // namespace
} // namespace piranha
