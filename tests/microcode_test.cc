/**
 * @file
 * Tests for the microcode infrastructure (paper §2.5.1): the 21-bit
 * instruction packing, the assembler's label resolution and
 * 16-aligned successor blocks for OR-based multiway branching, the
 * capacity limit, and the installed home/remote programs' structure.
 */

#include <gtest/gtest.h>

#include "proto/microcode.h"
#include "proto/tsrf.h"
#include "test_system.h"

namespace piranha {
namespace {

TEST(Microcode, PackingIs21Bits)
{
    MicroInstr i;
    i.op = MicroOp::RECEIVE;
    i.arg0 = 0xA;
    i.arg1 = 0x5;
    i.next = 0x3FF;
    std::uint32_t w = i.packed();
    EXPECT_EQ(w >> 21, 0u) << "must fit in 21 bits";
    EXPECT_EQ((w >> 18) & 0x7, static_cast<unsigned>(MicroOp::RECEIVE));
    EXPECT_EQ((w >> 14) & 0xF, 0xAu);
    EXPECT_EQ((w >> 10) & 0xF, 0x5u);
    EXPECT_EQ(w & 0x3FF, 0x3FFu);
}

TEST(Microcode, SevenInstructionTypes)
{
    // The 3-bit opcode accommodates exactly the seven types.
    EXPECT_LE(static_cast<unsigned>(MicroOp::MOVE), 7u);
}

TEST(Microcode, AssemblerResolvesLabelsAndBranches)
{
    MicroAssembler a;
    int hits = 0;
    a.label("start");
    a.op(MicroOp::SET, [&](TsrfEntry &) { ++hits; });
    a.test([](TsrfEntry &) { return 1u; },
           {{0, "zero"}, {1, "one"}});
    a.label("zero");
    a.halt();
    a.label("one");
    a.op(MicroOp::SET, [&](TsrfEntry &) { hits += 10; });
    a.halt();
    MicroProgram p = a.finalize();

    EXPECT_EQ(p.entry("start"), 0u);
    // Successor blocks are 16-aligned so a 4-bit condition can be
    // OR-ed into the next-address field.
    const MicroInstr &t = p.mem[1];
    EXPECT_EQ(t.op, MicroOp::TEST);
    EXPECT_EQ(t.next % 16, 0u);
    // The alias slot for cc=1 transfers to "one".
    EXPECT_TRUE(p.mem[t.next + 1].alias);
    EXPECT_EQ(p.mem[t.next + 1].next, p.entry("one"));
    // Unused condition codes trap.
    EXPECT_EQ(p.mem[t.next + 7].next, 0x3FFu);
}

TEST(Microcode, ReceiveWaitMaskFromBranchKeys)
{
    MicroAssembler a;
    a.label("e");
    a.receive({{3, "x"}, {9, "x"}});
    a.label("x");
    a.halt();
    MicroProgram p = a.finalize();
    EXPECT_EQ(p.mem[0].waitMask, (1u << 3) | (1u << 9));
}

TEST(Microcode, CapacityEnforced)
{
    MicroAssembler a;
    a.label("e");
    for (int i = 0; i < 1100; ++i)
        a.op(MicroOp::SET, nullptr);
    a.halt();
    EXPECT_DEATH((void)a.finalize(), "exceeds");
}

TEST(Microcode, UndefinedLabelDies)
{
    MicroAssembler a;
    a.label("e");
    a.jump("nowhere");
    EXPECT_DEATH((void)a.finalize(), "undefined");
}

TEST(Microcode, InstalledProgramsFitAndAreSubstantial)
{
    TestSystem sys(2, 1);
    const MicroProgram &h = sys.chips[0]->homeEngine().program();
    const MicroProgram &r = sys.chips[0]->remoteEngine().program();
    EXPECT_LE(h.mem.size(), MicroAssembler::memWords);
    EXPECT_LE(r.mem.size(), MicroAssembler::memWords);
    // "The current protocol uses about 500 microcode instructions
    //  per engine" — ours is leaner (semantic actions are richer)
    // but must be a real program, not a stub.
    EXPECT_GE(h.instructionCount(), 40u);
    EXPECT_GE(r.instructionCount(), 30u);
    // Every packed word is well-formed.
    for (const MicroInstr &i : h.mem)
        EXPECT_EQ(i.packed() >> 21, 0u);
}

TEST(Microcode, RemoteReadCostsFewInstructions)
{
    // Paper: "a typical read transaction to a remote home involves a
    // total of four instructions at the remote engine of the
    // requesting node: a SEND of the request to the home, a RECEIVE
    // of the reply, a TEST of a state variable, and an LSEND that
    // replies to the waiting processor."
    TestSystem sys(2, 1);
    Addr a = 0x5000000;
    while (sys.amap.home(a) != 0)
        a += 1ULL << sys.amap.pageShift;
    sys.chips[0]->memory().poke64(a, 1);
    sys.load(1, 0, a);
    sys.settle();
    auto &re = sys.chips[1]->remoteEngine();
    EXPECT_EQ(re.statThreads.value(), 1.0);
    EXPECT_LE(re.statInstrs.value(), 6.0);
    EXPECT_GE(re.statInstrs.value(), 3.0);
}

TEST(Microcode, TsrfOccupancyBounded)
{
    // 16 TSRF entries per engine; a burst of requests to one home
    // must queue rather than crash, and all complete.
    TestSystem sys(2, 8);
    std::vector<Addr> addrs;
    for (unsigned i = 0; i < 40; ++i) {
        Addr a = 0x9000000 + i * (1ULL << 13) * 2;
        while (sys.amap.home(a) != 0)
            a += 1ULL << sys.amap.pageShift;
        addrs.push_back(a);
        sys.chips[0]->memory().poke64(a, i);
    }
    unsigned done = 0;
    for (unsigned i = 0; i < addrs.size(); ++i) {
        MemReq req;
        req.op = MemOp::Load;
        req.addr = addrs[i];
        req.size = 8;
        sys.chips[1]->dl1(i % 8).access(
            req, [&](const MemRsp &) { ++done; });
    }
    sys.settle();
    EXPECT_EQ(done, addrs.size());
    for (unsigned i = 0; i < addrs.size(); ++i)
        EXPECT_EQ(sys.load(1, 0, addrs[i]), i);
}

} // namespace
} // namespace piranha
