/**
 * @file
 * Unit tests for the set-associative tag array and the intra-chip
 * switch: geometry, replacement policies, the banked index shift
 * (paper §2.3 interleave), and ICS lane priority / FIFO ordering
 * (paper §2.2).
 */

#include <gtest/gtest.h>

#include "cache/tag_array.h"
#include "ics/intra_chip_switch.h"
#include "sim/event_queue.h"

namespace piranha {
namespace {

struct Line : TagLine
{
    int payload = 0;
};

TEST(TagArray, GeometryAndLookup)
{
    TagArray<Line> t(64 * 1024, 2, ReplPolicy::Lru);
    EXPECT_EQ(t.numSets(), 512u);
    EXPECT_EQ(t.find(0x1000), nullptr);
    Line &slot = t.victimFor(0x1000);
    t.install(slot, 0x1000);
    slot.payload = 7;
    ASSERT_NE(t.find(0x1000), nullptr);
    EXPECT_EQ(t.find(0x1000)->payload, 7);
    EXPECT_EQ(t.find(0x1040), nullptr); // different line
    // Same line, different byte offset.
    EXPECT_NE(t.find(0x1008), nullptr);
}

TEST(TagArray, LruEvictsLeastRecentlyUsed)
{
    TagArray<Line> t(2 * 2 * 64, 2, ReplPolicy::Lru); // 2 sets, 2-way
    Addr set_stride = 2 * 64;
    Addr a0 = 0, a1 = a0 + set_stride, a2 = a1 + set_stride;
    t.install(t.victimFor(a0), a0);
    t.install(t.victimFor(a1), a1);
    t.touch(*t.find(a0)); // a0 most recent
    Line &v = t.victimFor(a2);
    EXPECT_EQ(v.addr, a1);
}

TEST(TagArray, RoundRobinCyclesWays)
{
    TagArray<Line> t(4 * 64, 4, ReplPolicy::RoundRobin); // 1 set 4-way
    for (unsigned i = 0; i < 4; ++i)
        t.install(t.victimFor(i * 64), i * 64);
    // Full set: round-robin (least-recently-loaded) cycles in order.
    Line &v0 = t.victimFor(0x9000);
    EXPECT_EQ(v0.addr, 0u);
    t.install(v0, 0x9000);
    EXPECT_EQ(t.victimFor(0xA000).addr, 64u);
}

TEST(TagArray, IndexShiftSpreadsBankedLines)
{
    // Without the shift, lines interleaved to one bank (every 8th
    // line) would collapse into 1/8 of the sets.
    TagArray<Line> banked(128 * 1024, 8, ReplPolicy::RoundRobin, 3);
    std::set<std::size_t> sets;
    for (unsigned i = 0; i < 256; ++i)
        sets.insert(banked.setIndex(static_cast<Addr>(i) * 8 * 64));
    EXPECT_EQ(sets.size(), 256u);
}

TEST(TagArray, ValidCountTracksInstallsAndInvalidates)
{
    TagArray<Line> t(64 * 1024, 2, ReplPolicy::Lru);
    EXPECT_EQ(t.validCount(), 0u);
    for (unsigned i = 0; i < 10; ++i)
        t.install(t.victimFor(i * 64), i * 64);
    EXPECT_EQ(t.validCount(), 10u);
    t.invalidate(*t.find(0));
    EXPECT_EQ(t.validCount(), 9u);
}

TEST(TagArray, BadGeometryDies)
{
    EXPECT_DEATH((TagArray<Line>(1000, 3, ReplPolicy::Lru)),
                 "geometry");
}

// ---- ICS ----

struct Sink : IcsClient
{
    std::vector<IcsMsg> got;
    EventQueue *eq = nullptr;
    void
    icsDeliver(const IcsMsg &msg) override
    {
        got.push_back(msg);
    }
};

TEST(Ics, DeliversWithPipelineLatency)
{
    EventQueue eq;
    Clock clk(500.0);
    IntraChipSwitch ics(eq, "ics", 4, clk, 2);
    Sink sink;
    ics.connect(1, &sink);
    IcsMsg m;
    m.type = IcsMsgType::GetS;
    m.srcPort = 0;
    m.dstPort = 1;
    m.addr = 0x40;
    ics.send(m);
    eq.run();
    ASSERT_EQ(sink.got.size(), 1u);
    EXPECT_EQ(sink.got[0].addr, 0x40u);
    EXPECT_EQ(eq.curTick(), clk.cycles(2));
}

TEST(Ics, HighLaneBypassesLowLane)
{
    EventQueue eq;
    Clock clk(500.0);
    IntraChipSwitch ics(eq, "ics", 4, clk, 1);
    Sink sink;
    ics.connect(1, &sink);
    // Queue a burst of low-priority data transfers, then one
    // high-priority invalidation: arbitration happens on the next
    // edge, so the inval (high lane) must be delivered first even
    // though it was sent last.
    for (int i = 0; i < 4; ++i) {
        IcsMsg lo;
        lo.type = IcsMsgType::GetS; // low lane
        lo.srcPort = 0;
        lo.dstPort = 1;
        lo.hasData = true; // 9-cycle occupancy
        lo.reqId = static_cast<std::uint64_t>(i);
        ics.send(lo);
    }
    IcsMsg hi;
    hi.type = IcsMsgType::Inval; // high lane
    hi.srcPort = 2;
    hi.dstPort = 1;
    hi.reqId = 99;
    ics.send(hi);
    eq.run();
    ASSERT_EQ(sink.got.size(), 5u);
    EXPECT_EQ(sink.got[0].reqId, 99u);
    EXPECT_EQ(sink.got[1].reqId, 0u);
}

TEST(Ics, FifoWithinLane)
{
    EventQueue eq;
    Clock clk(500.0);
    IntraChipSwitch ics(eq, "ics", 4, clk, 1);
    Sink sink;
    ics.connect(2, &sink);
    for (int i = 0; i < 8; ++i) {
        IcsMsg m;
        m.type = IcsMsgType::FillS; // high lane
        m.srcPort = 0;
        m.dstPort = 2;
        m.reqId = static_cast<std::uint64_t>(i);
        ics.send(m);
    }
    eq.run();
    ASSERT_EQ(sink.got.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(sink.got[static_cast<size_t>(i)].reqId,
                  static_cast<std::uint64_t>(i));
}

TEST(Ics, DataTransfersOccupyLonger)
{
    // Back-to-back data transfers: each occupies header + 8 words.
    EventQueue eq;
    Clock clk(500.0);
    IntraChipSwitch ics(eq, "ics", 4, clk, 1);
    Sink sink;
    ics.connect(1, &sink);
    for (int i = 0; i < 3; ++i) {
        IcsMsg m;
        m.type = IcsMsgType::FillS;
        m.srcPort = 0;
        m.dstPort = 1;
        m.hasData = true;
        ics.send(m);
    }
    eq.run();
    EXPECT_EQ(sink.got.size(), 3u);
    // 3 transfers x 9 cycles occupancy (+1 pipe): > 27 cycles total.
    EXPECT_GE(eq.curTick(), clk.cycles(27));
    EXPECT_EQ(ics.statDataTransfers.value(), 3.0);
}

TEST(Ics, UnconnectedPortDies)
{
    EventQueue eq;
    Clock clk(500.0);
    IntraChipSwitch ics(eq, "ics", 4, clk, 1);
    IcsMsg m;
    m.srcPort = 0;
    m.dstPort = 3;
    EXPECT_DEATH(ics.send(m), "no client");
}

} // namespace
} // namespace piranha
