/**
 * @file
 * Trace subsystem tests (DESIGN.md §10): on-disk format round-trips,
 * chunked per-CPU indexing, truncation/corruption detection, the
 * recording shim's transparency, and the headline record → replay
 * bit-identity gate — same stat tree, same coherence trace, same
 * kernel event count as the live-generator run, across seeds and
 * both OLTP and DSS, single- and multi-chip.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <vector>

#include "check/trace.h"
#include "core/piranha.h"
#include "harness/sweep.h"
#include "stats/json_writer.h"

namespace piranha {
namespace {

namespace fs = std::filesystem;

/** Unique scratch directory, removed on scope exit. */
struct TempDir
{
    fs::path path;

    TempDir()
    {
        std::string tmpl =
            (fs::temp_directory_path() / "piranha_trace_XXXXXX")
                .string();
        std::vector<char> buf(tmpl.begin(), tmpl.end());
        buf.push_back('\0');
        if (!::mkdtemp(buf.data()))
            throw std::runtime_error("mkdtemp failed");
        path = buf.data();
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }

    std::string file(const std::string &name) const
    {
        return (path / name).string();
    }
};

std::vector<unsigned char>
readAll(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    return std::vector<unsigned char>(
        std::istreambuf_iterator<char>(is),
        std::istreambuf_iterator<char>());
}

void
writeAll(const std::string &path, const std::vector<unsigned char> &b)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(reinterpret_cast<const char *>(b.data()),
             static_cast<std::streamsize>(b.size()));
}

// ---------------------------------------------------------------
// Format-level round trips
// ---------------------------------------------------------------

TEST(TraceFormat, RecordEncodeDecodeRoundTrip)
{
    StreamOp op;
    op.kind = StreamOp::Kind::Store;
    op.pc = 0x120003ff0;
    op.count = 1;
    op.addr = 0xdeadbeef00;
    op.size = 4;
    op.value = 0x1122334455667788ull;
    op.atomic = true;

    // Backward branch: pc below the previous pc (negative delta).
    Addr prev_pc = 0x120004400;
    TraceRecord r = encodeOp(op, prev_pc, 1234, 2);
    EXPECT_LT(r.pcDelta, 0);
    EXPECT_EQ(r.workDelta, 2u);
    EXPECT_EQ(r.tickDelta, 1234u);

    StreamOp back = decodeOp(r, prev_pc);
    EXPECT_EQ(back.kind, op.kind);
    EXPECT_EQ(back.pc, op.pc);
    EXPECT_EQ(back.count, op.count);
    EXPECT_EQ(back.addr, op.addr);
    EXPECT_EQ(back.size, op.size);
    EXPECT_EQ(back.value, op.value);
    EXPECT_EQ(back.atomic, op.atomic);
}

TEST(TraceFormat, HeaderStringsClipAndRoundTrip)
{
    TraceFileHeader h;
    traceSetString(h.config, "P8");
    EXPECT_EQ(traceGetString(h.config), "P8");

    // Oversized names clip to the field minus the NUL terminator.
    std::string longname(200, 'x');
    traceSetString(h.workload, longname);
    EXPECT_EQ(traceGetString(h.workload),
              longname.substr(0, sizeof(h.workload) - 1));
}

// ---------------------------------------------------------------
// Writer → reader file round trips
// ---------------------------------------------------------------

TraceWriter::Meta
testMeta(unsigned ncpus)
{
    TraceWriter::Meta m;
    m.nodes = 1;
    m.cpusPerChip = ncpus;
    m.nCpus = ncpus;
    m.seed = 42;
    m.workPerCpu = 7;
    m.workload = "unit";
    m.config = "P8";
    m.label = "unit/label";
    return m;
}

TraceRecord
testRecord(unsigned cpu, unsigned i)
{
    TraceRecord r;
    r.kind = static_cast<std::uint8_t>(StreamOp::Kind::Load);
    r.count = 1;
    r.pcDelta = 4;
    r.addr = 0x1000 * cpu + 8 * i;
    r.size = 8;
    r.tickDelta = 10 + i;
    r.workDelta = (i % 3 == 0) ? 1 : 0;
    return r;
}

/** Write a small two-CPU trace with a tiny buffer so every CPU
 *  flushes several interleaved chunks. */
std::string
writeChunkedTrace(const TempDir &tmp, unsigned ncpus,
                  unsigned per_cpu, std::size_t buffer_records)
{
    std::string path = tmp.file("chunked.ptrace");
    TraceWriter w(path, testMeta(ncpus), buffer_records);
    for (unsigned i = 0; i < per_cpu; ++i)
        for (unsigned cpu = 0; cpu < ncpus; ++cpu)
            w.append(cpu, testRecord(cpu, i));
    w.finalize();
    return path;
}

TEST(TraceFile, ChunkedRoundTripPreservesPerCpuOrder)
{
    TempDir tmp;
    // 11 records per CPU with 4-record buffers: 3 chunks minimum per
    // CPU, interleaved in file order — the footer chunk index must
    // reassemble each CPU's stream contiguously and in order.
    const unsigned ncpus = 2, per_cpu = 11;
    std::string path = writeChunkedTrace(tmp, ncpus, per_cpu, 4);

    TraceReader r(path);
    EXPECT_EQ(r.header().seed, 42u);
    EXPECT_EQ(r.header().workPerCpu, 7u);
    EXPECT_EQ(r.workloadName(), "unit");
    EXPECT_EQ(r.configName(), "P8");
    EXPECT_EQ(r.label(), "unit/label");
    EXPECT_EQ(r.nCpus(), ncpus);
    EXPECT_EQ(r.totalRecords(), ncpus * per_cpu);

    for (unsigned cpu = 0; cpu < ncpus; ++cpu) {
        EXPECT_EQ(r.cpuFooter(cpu).records, per_cpu);
        TraceReader::Cursor cur = r.cursor(cpu);
        TraceRecord rec;
        unsigned i = 0;
        while (cur.next(rec)) {
            TraceRecord want = testRecord(cpu, i);
            EXPECT_EQ(std::memcmp(&rec, &want, sizeof(rec)), 0)
                << "cpu " << cpu << " record " << i;
            ++i;
        }
        EXPECT_EQ(i, per_cpu);
        // Random access through the chunk index agrees with the
        // cursor walk.
        TraceRecord mid = r.record(cpu, per_cpu / 2);
        TraceRecord want = testRecord(cpu, per_cpu / 2);
        EXPECT_EQ(std::memcmp(&mid, &want, sizeof(mid)), 0);
    }

    TraceReader::ValidateReport rep = TraceReader::validateFile(path);
    EXPECT_TRUE(rep.ok()) << (rep.problems.empty()
                                  ? "?"
                                  : rep.problems.front());
    EXPECT_EQ(rep.totalRecords, ncpus * per_cpu);
}

TEST(TraceFile, EmptyStreamsAreValid)
{
    TempDir tmp;
    std::string path = tmp.file("empty.ptrace");
    {
        TraceWriter w(path, testMeta(4));
        w.finalize();
    }
    TraceReader r(path);
    EXPECT_EQ(r.totalRecords(), 0u);
    for (unsigned cpu = 0; cpu < 4; ++cpu) {
        TraceReader::Cursor cur = r.cursor(cpu);
        TraceRecord rec;
        EXPECT_FALSE(cur.next(rec));
    }
    EXPECT_TRUE(TraceReader::validateFile(path).ok());
}

TEST(TraceFile, TruncationIsDetected)
{
    TempDir tmp;
    std::string path = writeChunkedTrace(tmp, 2, 11, 4);
    std::vector<unsigned char> bytes = readAll(path);

    // Cut the file anywhere before the trailer: an interrupted
    // recording must never parse as a complete trace.
    for (std::size_t keep :
         {bytes.size() - sizeof(TraceTrailer), bytes.size() / 2,
          sizeof(TraceFileHeader) + 13ul, 10ul}) {
        std::string cut = tmp.file("cut.ptrace");
        writeAll(cut, std::vector<unsigned char>(
                          bytes.begin(), bytes.begin() + keep));
        EXPECT_THROW(TraceReader r(cut), std::runtime_error)
            << "kept " << keep << " bytes";
        TraceReader::ValidateReport rep =
            TraceReader::validateFile(cut);
        EXPECT_FALSE(rep.ok()) << "kept " << keep;
        EXPECT_TRUE(rep.truncated) << "kept " << keep;
    }
}

TEST(TraceFile, CorruptHeaderIsRejected)
{
    TempDir tmp;
    std::string path = writeChunkedTrace(tmp, 1, 5, 4);
    std::vector<unsigned char> bytes = readAll(path);
    bytes[0] ^= 0xff; // header magic
    std::string bad = tmp.file("badmagic.ptrace");
    writeAll(bad, bytes);

    EXPECT_THROW(TraceReader r(bad), std::runtime_error);
    TraceReader::ValidateReport rep = TraceReader::validateFile(bad);
    EXPECT_FALSE(rep.ok());
    EXPECT_FALSE(rep.truncated); // corruption, not a cut recording
}

TEST(TraceFile, CorruptRecordFailsChecksum)
{
    TempDir tmp;
    std::string path = writeChunkedTrace(tmp, 1, 5, 1024);
    std::vector<unsigned char> bytes = readAll(path);
    // Flip one bit inside the first record's payload (past the chunk
    // header). Structure stays intact; the per-CPU checksum must not.
    std::size_t off =
        sizeof(TraceFileHeader) + sizeof(TraceChunkHeader) + 16;
    bytes[off] ^= 0x01;
    std::string bad = tmp.file("badrec.ptrace");
    writeAll(bad, bytes);

    TraceReader::ValidateReport rep = TraceReader::validateFile(bad);
    EXPECT_TRUE(rep.structureOk);
    EXPECT_FALSE(rep.ok());
    bool checksum_flagged = false;
    for (const std::string &p : rep.problems)
        checksum_flagged |= p.find("checksum") != std::string::npos;
    EXPECT_TRUE(checksum_flagged);
}

// ---------------------------------------------------------------
// Recording shim + replay stream over a scripted source
// ---------------------------------------------------------------

/** Deterministic scripted stream with work increments. */
class ScriptStream : public InstrStream
{
  public:
    explicit ScriptStream(std::vector<StreamOp> ops)
        : _ops(std::move(ops))
    {}

    StreamOp next() override
    {
        if (_i >= _ops.size())
            return StreamOp{}; // Done
        StreamOp op = _ops[_i++];
        if (op.kind == StreamOp::Kind::Store)
            ++_work; // pretend each store completes one transaction
        return op;
    }

    std::uint64_t workDone() const override { return _work; }

  private:
    std::vector<StreamOp> _ops;
    std::size_t _i = 0;
    std::uint64_t _work = 0;
};

StreamOp
scriptOp(StreamOp::Kind k, Addr pc, std::uint32_t count, Addr addr)
{
    StreamOp op;
    op.kind = k;
    op.pc = pc;
    op.count = count;
    op.addr = addr;
    return op;
}

TEST(TraceShim, ScriptedStreamRecordsAndReplaysVerbatim)
{
    std::vector<StreamOp> script = {
        scriptOp(StreamOp::Kind::Compute, 0x1000, 12, 0),
        scriptOp(StreamOp::Kind::Load, 0x1030, 1, 0x8000),
        scriptOp(StreamOp::Kind::Idle, 0x1038, 50, 0),
        scriptOp(StreamOp::Kind::Store, 0x1040, 1, 0x8040),
        scriptOp(StreamOp::Kind::Wh64, 0x0fc0, 1, 0x8080), // back pc
        scriptOp(StreamOp::Kind::Done, 0, 1, 0),
    };

    TempDir tmp;
    std::string path = tmp.file("script.ptrace");
    EventQueue eq;
    {
        TraceWriter w(path, testMeta(1));
        RecordingStream rs(std::make_unique<ScriptStream>(script), w,
                           0, eq);
        // The shim must forward each op unchanged while recording it.
        for (const StreamOp &want : script) {
            StreamOp got = rs.next();
            EXPECT_EQ(got.kind, want.kind);
            EXPECT_EQ(got.pc, want.pc);
            EXPECT_EQ(got.count, want.count);
            EXPECT_EQ(got.addr, want.addr);
        }
        EXPECT_EQ(rs.workDone(), 1u);
        w.finalize();
        EXPECT_EQ(w.recordsWritten(), script.size());
    }

    auto reader = std::make_shared<const TraceReader>(path);
    TraceStream ts(reader, 0);
    for (const StreamOp &want : script) {
        StreamOp got = ts.next();
        EXPECT_EQ(got.kind, want.kind);
        EXPECT_EQ(got.pc, want.pc);
        EXPECT_EQ(got.count, want.count);
        EXPECT_EQ(got.addr, want.addr);
    }
    EXPECT_EQ(ts.workDone(), 1u);
    // Exhausted streams answer Done forever.
    EXPECT_EQ(ts.next().kind, StreamOp::Kind::Done);
    EXPECT_EQ(ts.next().kind, StreamOp::Kind::Done);
}

// ---------------------------------------------------------------
// Record → replay bit-identity through the full system
// ---------------------------------------------------------------

struct Snapshot
{
    RunResult run;
    std::string statDump;
    std::vector<TraceEvent> trace;
};

Snapshot
runOnce(SystemConfig cfg, Workload &wl, std::uint64_t work_per_cpu)
{
    CoherenceTracer tracer;
    cfg.chip.tracer = &tracer;
    PiranhaSystem sys(cfg);
    Snapshot s;
    s.run = sys.run(wl, work_per_cpu);
    s.statDump = statGroupToJson(sys.stats()).dump(0);
    s.trace = tracer.events();
    return s;
}

void
expectSnapshotsIdentical(const Snapshot &a, const Snapshot &b,
                         const std::string &what)
{
    // Full stat map including events_executed: replay runs the very
    // same event sequence, not merely an equivalent one.
    EXPECT_EQ(flattenRunResult(a.run), flattenRunResult(b.run))
        << what;
    EXPECT_EQ(a.run.eventsExecuted, b.run.eventsExecuted) << what;
    EXPECT_EQ(a.statDump, b.statDump) << what;
#if PIRANHA_COHERENCE_TRACE
    ASSERT_EQ(a.trace.size(), b.trace.size()) << what;
    for (std::size_t i = 0; i < a.trace.size(); ++i)
        EXPECT_TRUE(a.trace[i] == b.trace[i])
            << what << ": coherence trace diverges at event " << i;
#endif
}

template <typename MakeWl>
void
expectRecordReplayIdentity(SystemConfig cfg, MakeWl make_wl,
                           std::uint64_t work_per_cpu,
                           const std::string &what)
{
    TempDir tmp;
    std::string path = tmp.file("run.ptrace");

    Snapshot live = runOnce(cfg, *make_wl(), work_per_cpu);

    // Recording must be transparent: the recorded run is the live
    // run, bit for bit.
    Snapshot recorded = [&] {
        RecordingWorkload rec(make_wl(), path, cfg.name, what,
                              cfg.nodes, cfg.cpusPerChip);
        Snapshot s = runOnce(cfg, rec, work_per_cpu);
        rec.finalize();
        return s;
    }();
    expectSnapshotsIdentical(live, recorded, what + " (recording)");

    ASSERT_TRUE(TraceReader::validateFile(path).ok()) << what;

    // Replay must rebuild the recorded config and reproduce the run.
    TraceWorkload replay(path);
    EXPECT_EQ(replay.name(), make_wl()->name()) << what;
    SystemConfig rcfg = replay.config();
    EXPECT_EQ(rcfg.name, cfg.name) << what;
    EXPECT_EQ(rcfg.nodes, cfg.nodes) << what;
    EXPECT_EQ(rcfg.cpusPerChip, cfg.cpusPerChip) << what;
    EXPECT_EQ(replay.workPerCpu(), work_per_cpu) << what;

    Snapshot replayed = runOnce(rcfg, replay, replay.workPerCpu());
    expectSnapshotsIdentical(live, replayed, what + " (replay)");
}

TEST(TraceIdentity, OltpP8AcrossSeeds)
{
    for (std::uint64_t seed : {1ull, 2ull, 7ull}) {
        expectRecordReplayIdentity(
            configP8(),
            [seed] {
                return std::make_unique<OltpWorkload>(OltpParams{},
                                                      seed);
            },
            30, strFormat("P8/OLTP seed %llu",
                          (unsigned long long)seed));
    }
}

TEST(TraceIdentity, DssP8AcrossSeeds)
{
    for (std::uint64_t seed : {3ull, 9ull}) {
        expectRecordReplayIdentity(
            configP8(),
            [seed] {
                return std::make_unique<DssWorkload>(DssParams{},
                                                     seed);
            },
            2, strFormat("P8/DSS seed %llu",
                         (unsigned long long)seed));
    }
}

TEST(TraceIdentity, OltpMultiNode)
{
    expectRecordReplayIdentity(
        configPn(2, 2),
        [] {
            return std::make_unique<OltpWorkload>(OltpParams{}, 5);
        },
        20, "Pn(2,2)/OLTP");
}

TEST(TraceReplay, TopologyMismatchIsRejected)
{
    TempDir tmp;
    std::string path = tmp.file("p8.ptrace");
    {
        RecordingWorkload rec(std::make_unique<OltpWorkload>(), path,
                              "P8", "p8", 1, 8);
        PiranhaSystem sys(configP8());
        sys.run(rec, 5);
    }
    TraceWorkload replay(path);
    // A P8 trace cannot drive a 4-CPU system.
    PiranhaSystem sys(configPn(4, 1));
    EXPECT_THROW(sys.run(replay, 5), std::runtime_error);
}

TEST(TraceRecord, SecondRunOverSameRecordingIsRejected)
{
    TempDir tmp;
    std::string path = tmp.file("once.ptrace");
    RecordingWorkload rec(std::make_unique<OltpWorkload>(), path,
                          "P1", "once", 1, 1);
    PiranhaSystem sys(configP1());
    sys.run(rec, 5);
    // Re-running the same instance would append a second op sequence
    // to the same per-CPU streams; the guard must refuse.
    PiranhaSystem sys2(configP1());
    EXPECT_THROW(sys2.run(rec, 5), std::runtime_error);
}

// ---------------------------------------------------------------------
// Trace x engine interop (DESIGN.md §13): a trace recorded under one
// engine must replay bit-identically under the other. Both directions
// use drainStop + per-chip tracers + the canonical trace merge so the
// comparison basis is engine-independent.

/** Like runOnce, but engine-selectable and canonical: per-chip
 *  tracers, run-to-quiescence stop, merged (tick, node)-sorted
 *  trace. */
Snapshot
runCanonical(SystemConfig cfg, Workload &wl, std::uint64_t work_per_cpu,
             bool parallel, unsigned shards = 0)
{
    std::vector<std::unique_ptr<CoherenceTracer>> tracers;
    for (unsigned n = 0; n < cfg.nodes; ++n) {
        tracers.push_back(std::make_unique<CoherenceTracer>());
        cfg.chipTracers.push_back(tracers.back().get());
    }
    cfg.engine =
        parallel ? EngineKind::Parallel : EngineKind::Serial;
    cfg.shards = shards;
    cfg.drainStop = true;
    PiranhaSystem sys(cfg);
    Snapshot s;
    s.run = sys.run(wl, work_per_cpu);
    s.statDump = statGroupToJson(sys.stats()).dump(0);
    std::vector<std::vector<TraceEvent>> parts(cfg.nodes);
    for (unsigned n = 0; n < cfg.nodes; ++n)
        parts[n] = tracers[n]->events();
    s.trace = mergeShardTraces(parts);
    return s;
}

void
expectCanonicalIdentical(const Snapshot &a, const Snapshot &b,
                         const std::string &what)
{
    EXPECT_EQ(flattenRunResultComparable(a.run),
              flattenRunResultComparable(b.run))
        << what;
    EXPECT_EQ(a.run.eventsEquivalent, b.run.eventsEquivalent) << what;
    EXPECT_EQ(a.statDump, b.statDump) << what;
#if PIRANHA_COHERENCE_TRACE
    ASSERT_EQ(a.trace.size(), b.trace.size()) << what;
    for (std::size_t i = 0; i < a.trace.size(); ++i)
        EXPECT_TRUE(a.trace[i] == b.trace[i])
            << what << ": coherence trace diverges at event " << i;
#endif
}

TEST(TraceEngineInterop, RecordSerialReplayParallel)
{
    TempDir tmp;
    std::string path = tmp.file("serial.ptrace");
    SystemConfig cfg = configPn(2, 4);

    Snapshot live = [&] {
        RecordingWorkload rec(
            std::make_unique<OltpWorkload>(OltpParams{}, 5), path,
            cfg.name, "interop", cfg.nodes, cfg.cpusPerChip);
        Snapshot s = runCanonical(cfg, rec, 12, /*parallel=*/false);
        rec.finalize();
        return s;
    }();
    ASSERT_TRUE(TraceReader::validateFile(path).ok());

    for (unsigned shards : {2u, 4u}) {
        TraceWorkload replay(path);
        Snapshot par =
            runCanonical(cfg, replay, replay.workPerCpu(),
                         /*parallel=*/true, shards);
        expectCanonicalIdentical(
            live, par,
            strFormat("serial-record -> parallel-replay shards=%u",
                      shards));
    }
}

TEST(TraceEngineInterop, RecordParallelReplaySerial)
{
    TempDir tmp;
    std::string path = tmp.file("parallel.ptrace");
    SystemConfig cfg = configPn(2, 4);

    Snapshot live = [&] {
        RecordingWorkload rec(
            std::make_unique<OltpWorkload>(OltpParams{}, 9), path,
            cfg.name, "interop", cfg.nodes, cfg.cpusPerChip);
        Snapshot s =
            runCanonical(cfg, rec, 12, /*parallel=*/true, 4);
        rec.finalize();
        return s;
    }();
    ASSERT_TRUE(TraceReader::validateFile(path).ok());

    TraceWorkload replay(path);
    Snapshot serial = runCanonical(cfg, replay, replay.workPerCpu(),
                                   /*parallel=*/false);
    expectCanonicalIdentical(live, serial,
                             "parallel-record -> serial-replay");
}

} // namespace
} // namespace piranha
