/**
 * @file
 * RDRAM channel and memory-controller tests (paper §2.4): open-page
 * timing (60 ns random / 40 ns open-page hit), the keep-open window,
 * row-buffer capacity, read-after-write ordering and channel
 * serialization.
 */

#include <gtest/gtest.h>

#include "mem/mem_ctrl.h"
#include "sim/event_queue.h"

namespace piranha {
namespace {

TEST(Rdram, RandomThenOpenPageLatency)
{
    RdramChannel ch;
    Tick first = ch.access(0x1000, 0);
    EXPECT_EQ(first, nsToTicks(60));
    // Same 512-byte page shortly after: open-page hit.
    Tick second = ch.access(0x1040, nsToTicks(100));
    EXPECT_EQ(second, nsToTicks(40));
    // Different page: activation again.
    Tick third = ch.access(0x9000, nsToTicks(200));
    EXPECT_EQ(third, nsToTicks(60));
}

TEST(Rdram, KeepOpenWindowExpires)
{
    RdramChannel ch; // keepOpenNs = 1000
    ch.access(0x1000, 0);
    EXPECT_EQ(ch.access(0x1000, nsToTicks(900)), nsToTicks(40));
    EXPECT_EQ(ch.access(0x1000, nsToTicks(5000)), nsToTicks(60));
}

TEST(Rdram, PageHitStatistics)
{
    RdramChannel ch;
    for (int i = 0; i < 8; ++i)
        ch.access(0x2000 + i * 64, static_cast<Tick>(i) * 100);
    EXPECT_EQ(ch.statPageMisses.value(), 1.0);
    EXPECT_EQ(ch.statPageHits.value(), 7.0);
}

TEST(Rdram, RowBufferCapacityBounded)
{
    RdramParams p;
    p.maxOpenPages = 4;
    p.keepOpenNs = 1e9; // never expire by time
    RdramChannel ch(p);
    unsigned page_span = p.pageShift + p.channelInterleaveLog2;
    for (unsigned i = 0; i < 64; ++i)
        ch.access(static_cast<Addr>(i) << page_span, i);
    // All distinct pages: no crash, all misses.
    EXPECT_EQ(ch.statPageMisses.value(), 64.0);
}

TEST(MemCtrl, ReadReturnsDataAndDirectory)
{
    EventQueue eq;
    BackingStore store;
    store.poke64(0x4000, 0x1234);
    store.line(0x4000).dirBits = 0x5555;
    MemCtrl mc(eq, "mc", store);
    bool done = false;
    mc.readLine(0x4000, [&](const LineData &d, std::uint64_t dir) {
        EXPECT_EQ(d.read(0, 8), 0x1234u);
        EXPECT_EQ(dir, 0x5555u);
        done = true;
    });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_GE(eq.curTick(), nsToTicks(60));
}

TEST(MemCtrl, PostedWriteVisibleToLaterRead)
{
    EventQueue eq;
    BackingStore store;
    MemCtrl mc(eq, "mc", store);
    LineData d;
    d.write(8, 8, 0xabc);
    std::uint64_t dir = 7;
    mc.writeLine(0x8000, &d, &dir);
    bool done = false;
    mc.readLine(0x8000, [&](const LineData &rd, std::uint64_t rdir) {
        EXPECT_EQ(rd.read(8, 8), 0xabcu);
        EXPECT_EQ(rdir, 7u);
        done = true;
    });
    eq.run();
    EXPECT_TRUE(done);
}

TEST(MemCtrl, PartialWritePreservesOtherFields)
{
    EventQueue eq;
    BackingStore store;
    store.poke64(0xC000, 0x77);
    store.line(0xC000).dirBits = 9;
    MemCtrl mc(eq, "mc", store);
    std::uint64_t dir = 42;
    mc.writeLine(0xC000, nullptr, &dir); // directory-only update
    eq.run();
    EXPECT_EQ(store.peek64(0xC000), 0x77u);
    EXPECT_EQ(store.peek(0xC000).dirBits, 42u);
}

TEST(MemCtrl, ChannelSerializesRequests)
{
    EventQueue eq;
    BackingStore store;
    MemCtrl mc(eq, "mc", store);
    std::vector<Tick> completions;
    for (int i = 0; i < 4; ++i) {
        mc.readLine(0x10000 + i * 0x4000,
                    [&](const LineData &, std::uint64_t) {
                        completions.push_back(eq.curTick());
                    });
    }
    eq.run();
    ASSERT_EQ(completions.size(), 4u);
    // Transfers occupy the channel for 40 ns each: completions are
    // spread, not simultaneous.
    for (size_t i = 1; i < completions.size(); ++i)
        EXPECT_GE(completions[i] - completions[i - 1], nsToTicks(40));
}

TEST(BackingStoreTest, SparseMaterialization)
{
    BackingStore s;
    EXPECT_EQ(s.touchedLines(), 0u);
    EXPECT_EQ(s.peek64(0x123456780), 0u); // peek does not materialize
    EXPECT_EQ(s.touchedLines(), 0u);
    s.poke64(0x123456780, 5);
    EXPECT_EQ(s.touchedLines(), 1u);
    EXPECT_EQ(s.peek64(0x123456780), 5u);
}

} // namespace
} // namespace piranha
