/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.h"

namespace piranha {
namespace {

TEST(Scalar, AccumulatesAndResets)
{
    Scalar s;
    EXPECT_EQ(s.value(), 0.0);
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
    s.set(7);
    EXPECT_EQ(s.value(), 7.0);
}

TEST(Ratio, DividesAtReadTime)
{
    Scalar num, den;
    Ratio r(&num, &den);
    EXPECT_EQ(r.value(), 0.0); // no div by zero
    num += 10;
    den += 4;
    EXPECT_DOUBLE_EQ(r.value(), 2.5);
    den += 1;
    EXPECT_DOUBLE_EQ(r.value(), 2.0);
}

TEST(Histogram, BasicMoments)
{
    Histogram h(10.0, 10);
    h.sample(5);
    h.sample(15);
    h.sample(25);
    EXPECT_EQ(h.samples(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 15.0);
    EXPECT_DOUBLE_EQ(h.max(), 25.0);
    EXPECT_DOUBLE_EQ(h.min(), 5.0);
}

TEST(Histogram, OverflowGoesToLastBucket)
{
    Histogram h(1.0, 4);
    h.sample(1000.0);
    EXPECT_EQ(h.buckets().back(), 1u);
}

TEST(Histogram, NegativeSamplesClampToFirstBucket)
{
    Histogram h(1.0, 4);
    // A negative value used to wrap the size_t index cast and land in
    // the overflow bucket (or out of bounds); it must count in
    // bucket 0 with min/max tracked correctly.
    h.sample(-3.0);
    EXPECT_EQ(h.buckets().front(), 1u);
    EXPECT_EQ(h.buckets().back(), 0u);
    EXPECT_DOUBLE_EQ(h.min(), -3.0);
    EXPECT_DOUBLE_EQ(h.max(), -3.0);
    EXPECT_DOUBLE_EQ(h.mean(), -3.0);

    h.sample(-10.0, 2);
    h.sample(2.5);
    EXPECT_EQ(h.buckets().front(), 3u);
    EXPECT_EQ(h.buckets()[2], 1u);
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_DOUBLE_EQ(h.min(), -10.0);
    EXPECT_DOUBLE_EQ(h.max(), 2.5);
}

TEST(Histogram, AllNegativeTracksMax)
{
    Histogram h(1.0, 4);
    h.sample(-5.0);
    h.sample(-2.0);
    EXPECT_DOUBLE_EQ(h.max(), -2.0);
    EXPECT_DOUBLE_EQ(h.min(), -5.0);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    h.sample(-1.0);
    EXPECT_DOUBLE_EQ(h.min(), -1.0);
    EXPECT_DOUBLE_EQ(h.max(), -1.0);
}

TEST(Histogram, PercentileApproximation)
{
    Histogram h(1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(i);
    EXPECT_NEAR(h.percentile(0.5), 50.0, 2.0);
    EXPECT_NEAR(h.percentile(0.9), 90.0, 2.0);
}

TEST(Histogram, WeightedSamples)
{
    Histogram h(1.0, 10);
    h.sample(2.0, 3);
    EXPECT_EQ(h.samples(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(StatGroup, ReportsTree)
{
    Scalar hits, misses;
    hits += 90;
    misses += 10;
    StatGroup root("chip");
    StatGroup child("l2");
    child.addScalar("hits", &hits, "L2 hits");
    child.addScalar("misses", &misses, "L2 misses");
    child.addRatio("hit_rate", Ratio(&hits, &misses), "");
    root.addChild(&child);

    std::ostringstream os;
    root.report(os);
    std::string out = os.str();
    EXPECT_NE(out.find("chip.l2.hits"), std::string::npos);
    EXPECT_NE(out.find("chip.l2.misses"), std::string::npos);
    EXPECT_NE(out.find("90"), std::string::npos);
    EXPECT_NE(out.find("# L2 hits"), std::string::npos);
}

TEST(StatGroup, ScalarLookup)
{
    Scalar s;
    StatGroup g("g");
    g.addScalar("x", &s);
    EXPECT_EQ(g.scalar("x"), &s);
    EXPECT_EQ(g.scalar("y"), nullptr);
}

TEST(TextTable, AlignsColumns)
{
    TextTable t({"Config", "OLTP", "DSS"});
    t.addRow({"P8", "0.35", "0.43"});
    t.addRow({"OOO", "1.00", "1.00"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("Config"), std::string::npos);
    EXPECT_NE(out.find("P8"), std::string::npos);
    // Separator line present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, FmtPrecision)
{
    EXPECT_EQ(TextTable::fmt(2.888, 2), "2.89");
    EXPECT_EQ(TextTable::fmt(2.0, 1), "2.0");
}

TEST(TextTable, WrongArityPanics)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only one"}), "arity");
}

} // namespace
} // namespace piranha
