/**
 * @file
 * Intrusive event-kernel tests: wheel/heap ordering across the
 * horizon, wrap-around, deschedule/reschedule of in-flight events,
 * misuse panics, monotonic time across run/step boundaries, and a
 * randomized execution-order equivalence check against the preserved
 * closure/priority-queue kernel (LegacyEventQueue).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "sim/legacy_event_queue.h"
#include "sim/rng.h"

namespace piranha {
namespace {

// Wheel geometry mirrored from event_queue.h: 256 buckets of 2^11
// ticks. Deltas below the horizon are filed in the wheel, at or above
// it in the far-future heap.
constexpr Tick kBucket = Tick(1) << 11;
constexpr Tick kHorizon = 256 * kBucket;

/** Appends its id to a shared log when it fires. */
class LogEvent : public Event
{
  public:
    LogEvent(std::vector<int> *log, int id) : _log(log), _id(id) {}
    void process() override { _log->push_back(_id); }
    const char *eventName() const override { return "log"; }

  private:
    std::vector<int> *_log;
    int _id;
};

TEST(EventKernel, SameTickFifoAcrossWheelAndHeap)
{
    EventQueue eq;
    std::vector<int> log;
    // The rendezvous tick starts beyond the horizon (heap), then
    // events keep joining it as time advances into wheel range:
    // FIFO order must hold across both containers.
    const Tick t = kHorizon + 5000;
    LogEvent far0(&log, 0), far1(&log, 1), near2(&log, 2),
        near3(&log, 3);
    eq.schedule(far0, t); // heap
    eq.schedule(far1, t); // heap
    eq.schedule(10000, [&] {
        eq.schedule(near2, t); // now within horizon: wheel
        eq.schedule(near3, t); // wheel, same bucket, same tick
    });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(eq.curTick(), t);
}

TEST(EventKernel, OrderPreservedAtWheelHorizonBoundary)
{
    EventQueue eq;
    std::vector<int> log;
    // Delta of 255 buckets lands in the wheel's last reachable
    // bucket (wrap-around index); 256 buckets goes to the heap.
    LogEvent lastBucket(&log, 1), firstHeap(&log, 2), far(&log, 3);
    eq.scheduleIn(lastBucket, 255 * kBucket);
    eq.scheduleIn(firstHeap, 256 * kBucket);
    eq.scheduleIn(far, 256 * kBucket + 1);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(EventKernel, WheelWrapAroundKeepsTickOrder)
{
    EventQueue eq;
    std::vector<int> log;
    // March time forward so bucket indices wrap the 256-entry wheel
    // several times; events scheduled at mixed deltas must still fire
    // in global tick order.
    std::vector<std::unique_ptr<LogEvent>> events;
    int id = 0;
    Tick when = 0;
    std::vector<std::pair<Tick, int>> expected;
    for (int lap = 0; lap < 10; ++lap) {
        when += 200 * kBucket + 37; // crosses the wrap point each lap
        events.push_back(std::make_unique<LogEvent>(&log, id));
        eq.schedule(*events.back(), when);
        expected.push_back({when, id});
        ++id;
        // A nearer event inserted later must still fire earlier.
        events.push_back(std::make_unique<LogEvent>(&log, id));
        eq.schedule(*events.back(), when - 50 * kBucket);
        expected.push_back({when - 50 * kBucket, id});
        ++id;
    }
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    EXPECT_TRUE(eq.run());
    ASSERT_EQ(log.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(log[i], expected[i].second) << "position " << i;
}

TEST(EventKernel, DescheduleInFlightNeverFires)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent nearEv(&log, 1), farEv(&log, 2), survivor(&log, 3);
    eq.scheduleIn(nearEv, 100);          // wheel
    eq.scheduleIn(farEv, kHorizon + 10); // heap (stale-entry path)
    eq.scheduleIn(survivor, 200);
    eq.schedule(50, [&] {
        eq.deschedule(nearEv);
        eq.deschedule(farEv);
    });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(log, (std::vector<int>{3}));
    EXPECT_FALSE(nearEv.scheduled());
    EXPECT_FALSE(farEv.scheduled());
}

TEST(EventKernel, RescheduleMovesPendingEvent)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent a(&log, 1), b(&log, 2);
    eq.scheduleIn(a, 100);
    eq.scheduleIn(b, 300);
    // Move a past b; move b from heap range into wheel range.
    eq.schedule(10, [&] {
        eq.reschedule(a, 400);
        EXPECT_EQ(a.when(), 400u);
    });
    LogEvent farMover(&log, 3);
    eq.scheduleIn(farMover, kHorizon + 999);
    eq.schedule(20, [&] { eq.reschedule(farMover, 350); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(log, (std::vector<int>{2, 3, 1}));
}

TEST(EventKernel, SquashCancelsAndAllowsReuse)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent ev(&log, 7);
    eq.scheduleIn(ev, 100);
    ev.squash();
    EXPECT_FALSE(ev.scheduled());
    ev.squash(); // no-op when idle
    eq.scheduleIn(ev, 200);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(log, (std::vector<int>{7}));
}

TEST(EventKernelDeath, ScheduleInPastPanics)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent ev(&log, 0);
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(ev, 50), "past");
}

TEST(EventKernelDeath, DoubleSchedulePanics)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent ev(&log, 0);
    eq.scheduleIn(ev, 100);
    EXPECT_DEATH(eq.scheduleIn(ev, 200), "already scheduled");
}

TEST(EventKernelDeath, DescheduleIdleEventPanics)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent ev(&log, 0);
    EXPECT_DEATH(eq.deschedule(ev), "idle");
}

TEST(EventKernel, TimeIsMonotonicAcrossRunAndStep)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(600, [&] { ++fired; });
    EXPECT_FALSE(eq.run(500));
    EXPECT_EQ(eq.curTick(), 500u);
    // An earlier limit must not rewind the clock.
    EXPECT_FALSE(eq.run(400));
    EXPECT_EQ(eq.curTick(), 500u);
    EXPECT_EQ(fired, 0);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(eq.curTick(), 600u);
    EXPECT_EQ(fired, 1);
    // Draining an empty queue holds time still.
    EXPECT_TRUE(eq.run(100));
    EXPECT_EQ(eq.curTick(), 600u);
}

TEST(EventKernel, PendingAndExecutedCounts)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent a(&log, 1), b(&log, 2);
    eq.scheduleIn(a, 10);
    eq.scheduleIn(b, kHorizon + 10);
    eq.schedule(5, [] {});
    EXPECT_EQ(eq.pending(), 3u);
    eq.run();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.executed(), 3u);
}

TEST(EventKernel, MemberEventIsReusableAcrossFires)
{
    struct Counter
    {
        int n = 0;
        void bump() { ++n; }
    } c;
    EventQueue eq;
    MemberEvent<Counter, &Counter::bump> ev(&c, "counter.bump");
    EXPECT_STREQ(ev.eventName(), "counter.bump");
    for (int i = 0; i < 5; ++i) {
        eq.scheduleIn(ev, 10);
        eq.run();
        EXPECT_FALSE(ev.scheduled());
    }
    EXPECT_EQ(c.n, 5);
}

TEST(EventKernel, EventPoolGrowsOnlyWithHighWaterMark)
{
    struct NopEvent : Event
    {
        void process() override {}
    };
    EventPool<NopEvent> pool;
    // Three in flight at the peak.
    NopEvent *a = pool.acquire();
    NopEvent *b = pool.acquire();
    NopEvent *c = pool.acquire();
    EXPECT_EQ(pool.size(), 3u);
    pool.release(a);
    pool.release(b);
    pool.release(c);
    // Steady-state churn below the mark reuses storage.
    for (int i = 0; i < 100; ++i) {
        NopEvent *x = pool.acquire();
        NopEvent *y = pool.acquire();
        pool.release(x);
        pool.release(y);
    }
    EXPECT_EQ(pool.size(), 3u);
}

TEST(EventKernel, DestructorOfScheduledEventDeschedules)
{
    EventQueue eq;
    std::vector<int> log;
    {
        LogEvent doomed(&log, 1);
        eq.scheduleIn(doomed, 100);
        LogEvent farDoomed(&log, 2);
        eq.scheduleIn(farDoomed, kHorizon + 100);
    } // both destroyed while pending
    LogEvent ok(&log, 3);
    eq.scheduleIn(ok, 200);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(log, (std::vector<int>{3}));
}

/**
 * Replays one pseudo-random schedule script into a queue. Each fired
 * event logs its id and may schedule children at deterministic deltas
 * spanning wheel range, the horizon boundary and far-heap range, so
 * both containers stay populated.
 */
template <class Queue>
std::vector<int>
runScript(Queue &q, std::uint64_t seed)
{
    std::vector<int> log;
    Pcg32 rng(seed);
    int nextId = 0;
    // Recursive closure: each event may spawn up to 3 children.
    std::function<void(int, int)> fire = [&](int id, int depth) {
        log.push_back(id);
        if (depth >= 4)
            return;
        unsigned kids = rng.below(4);
        for (unsigned k = 0; k < kids; ++k) {
            Tick delta;
            switch (rng.below(4)) {
              case 0: delta = rng.below(8) * 2000; break;       // hot
              case 1: delta = rng.below(4096); break;           // sub-bucket
              case 2: delta = 250 * 2048 + rng.below(20000); break; // boundary
              default: delta = 600000 + rng.below(100000); break;   // far
            }
            int kid = nextId++;
            q.scheduleIn(delta, [&fire, kid, depth] {
                fire(kid, depth + 1);
            });
        }
    };
    for (int r = 0; r < 40; ++r) {
        Tick at = rng.below(500000);
        int id = nextId++;
        q.schedule(at, [&fire, id] { fire(id, 0); });
    }
    q.run();
    return log;
}

TEST(EventKernel, RandomizedOrderMatchesLegacyKernel)
{
    for (std::uint64_t seed : {1u, 2u, 3u, 42u, 1234u}) {
        LegacyEventQueue legacy;
        EventQueue wheel(true);
        EventQueue heapOnly(false);
        std::vector<int> a = runScript(legacy, seed);
        std::vector<int> b = runScript(wheel, seed);
        std::vector<int> c = runScript(heapOnly, seed);
        ASSERT_FALSE(a.empty());
        EXPECT_EQ(a, b) << "wheel kernel diverged, seed " << seed;
        EXPECT_EQ(a, c) << "heap-only kernel diverged, seed " << seed;
        EXPECT_EQ(legacy.curTick(), wheel.curTick());
        EXPECT_EQ(legacy.executed(), wheel.executed());
    }
}

} // namespace
} // namespace piranha
