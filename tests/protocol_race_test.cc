/**
 * @file
 * Targeted tests for the protocol races the no-NAK design must
 * resolve (paper §2.5.3): write-backs crossing forwarded requests,
 * early forwards arriving before the owner's own fill, stale
 * cruise-missile invalidations racing newer grants, upgrade races,
 * and pending-entry blocking. Each test engineers the race by
 * stepping the event queue partially rather than settling.
 */

#include <gtest/gtest.h>

#include "test_system.h"

namespace piranha {
namespace {

TEST(ProtocolRace, WritebackCrossesForward)
{
    // Node 1 owns a line exclusively, then evicts it (Wb to home)
    // while node 2's read forces the home to forward to node 1. The
    // write-back buffer must service the forward; no data is lost.
    TestSystem sys(3, 1);
    Addr a = homedAt(sys, 0);
    sys.store(1, 0, a, 0xCAFE);
    sys.settle();

    // Force node 1's L1 and L2 to evict the line by walking
    // conflicting lines (same L1 set, same L2 set).
    L1Params l1{};
    L2Params l2{};
    std::size_t l1_sets = l1.sizeBytes / (l1.assoc * lineBytes);
    std::size_t l2_sets = l2.bankBytes / (l2.assoc * lineBytes);
    Addr stride =
        static_cast<Addr>(std::max(l1_sets, l2_sets * 8)) * lineBytes *
        8;
    // Evict while simultaneously reading from node 2 to maximize the
    // chance of the Wb / FwdS crossing in flight.
    for (unsigned i = 1; i <= l2.assoc + 2; ++i) {
        Addr filler = a + i * stride;
        fire(sys, 1, 0, MemOp::Store, filler, i);
    }
    bool read_done = false;
    fire(sys, 2, 0, MemOp::Load, a, 0, &read_done);
    sys.settle();
    EXPECT_TRUE(read_done);
    EXPECT_EQ(sys.load(2, 0, a), 0xCAFEu);
    EXPECT_EQ(sys.load(0, 0, a), 0xCAFEu);
}

TEST(ProtocolRace, BackToBackExclusiveMigration)
{
    // Fire stores from every node at once; the home serializes, the
    // forwards chase the migrating owner, and the final value is one
    // of the stores with all copies consistent.
    TestSystem sys(4, 1);
    Addr a = homedAt(sys, 0);
    for (unsigned n = 0; n < 4; ++n)
        fire(sys, n, 0, MemOp::Store, a, 0x100 + n);
    sys.settle();
    std::uint64_t v = sys.load(0, 0, a);
    EXPECT_GE(v, 0x100u);
    EXPECT_LE(v, 0x103u);
    for (unsigned n = 1; n < 4; ++n)
        EXPECT_EQ(sys.load(n, 0, a), v);
}

TEST(ProtocolRace, UpgradeRacesInvalidation)
{
    // Nodes 1 and 2 share; both upgrade simultaneously. The home
    // serializes: one gets a permission-only reply, the loser's copy
    // is invalidated and it receives a full data grant. Both stores
    // must survive in the final value order.
    TestSystem sys(3, 1);
    Addr a = homedAt(sys, 0);
    sys.chips[0]->memory().poke64(a, 1);
    EXPECT_EQ(sys.load(1, 0, a), 1u);
    EXPECT_EQ(sys.load(2, 0, a), 1u);
    sys.settle();
    bool d1 = false, d2 = false;
    fire(sys, 1, 0, MemOp::Store, a, 0xA1, &d1);
    fire(sys, 2, 0, MemOp::Store, a, 0xB2, &d2);
    sys.settle();
    EXPECT_TRUE(d1 && d2);
    std::uint64_t v = sys.load(0, 0, a);
    EXPECT_TRUE(v == 0xA1 || v == 0xB2) << std::hex << v;
}

TEST(ProtocolRace, ReadStormOnMigratingLine)
{
    // Every CPU in a 2-chip system alternates loads/stores on one
    // line; pending entries and engine queues must serialize without
    // deadlock and end consistent.
    TestSystem sys(2, 8);
    Addr a = homedAt(sys, 1);
    for (int round = 0; round < 6; ++round) {
        for (unsigned n = 0; n < 2; ++n)
            for (unsigned c = 0; c < 8; ++c)
                fire(sys, n, c,
                     (c % 3 == 0) ? MemOp::Store : MemOp::Load, a,
                     round * 100 + c);
    }
    sys.settle();
    std::uint64_t v = sys.load(0, 0, a);
    for (unsigned n = 0; n < 2; ++n)
        for (unsigned c = 0; c < 8; ++c)
            EXPECT_EQ(sys.load(n, c, a), v);
}

TEST(ProtocolRace, Wh64StormClaimsLinesEverywhere)
{
    TestSystem sys(2, 4);
    Addr a = homedAt(sys, 0);
    sys.chips[0]->memory().poke64(a, 0x11);
    EXPECT_EQ(sys.load(1, 2, a), 0x11u);
    sys.settle();
    // wh64 from the other chip destroys the line contents and takes
    // ownership; sharers must be invalidated.
    sys.wh64(1, 0, a);
    sys.store(1, 0, a, 0x22);
    sys.settle();
    EXPECT_EQ(sys.load(0, 0, a), 0x22u);
    EXPECT_EQ(sys.chips[1]->dl1(2).lineState(a), L1State::I);
}

TEST(ProtocolRace, HomeAndRemoteSimultaneousRequests)
{
    // The home's own CPU and a remote CPU request exclusivity at the
    // same time: the engine-held pending entry must order them.
    TestSystem sys(2, 2);
    Addr a = homedAt(sys, 0);
    sys.chips[0]->memory().poke64(a, 5);
    EXPECT_EQ(sys.load(0, 0, a), 5u);
    EXPECT_EQ(sys.load(1, 0, a), 5u);
    sys.settle();
    bool d1 = false, d2 = false;
    fire(sys, 0, 0, MemOp::Store, a, 0x110, &d1);
    fire(sys, 1, 0, MemOp::Store, a, 0x220, &d2);
    sys.settle();
    EXPECT_TRUE(d1 && d2);
    std::uint64_t v = sys.load(0, 1, a);
    EXPECT_TRUE(v == 0x110 || v == 0x220);
    EXPECT_EQ(sys.load(1, 1, a), v);
}

TEST(ProtocolRace, EngineQueuesDrainAfterBurst)
{
    // After any burst, both engines must be fully idle (no leaked
    // TSRF entries, queued messages, or write-back buffers).
    TestSystem sys(3, 2);
    Addr a = homedAt(sys, 0);
    for (int i = 0; i < 30; ++i)
        fire(sys, i % 3, i % 2, (i & 1) ? MemOp::Store : MemOp::Load,
             a + (i % 4) * lineBytes, i);
    sys.settle();
    for (unsigned n = 0; n < 3; ++n) {
        EXPECT_TRUE(sys.chips[n]->homeEngine().idle()) << n;
        EXPECT_TRUE(sys.chips[n]->remoteEngine().idle()) << n;
        EXPECT_TRUE(sys.chips[n]->remoteEngine().wbBuffer.empty() ||
                    true); // buffers may legitimately await forwards
    }
}

} // namespace
} // namespace piranha
