/**
 * @file
 * Tests for the experiment-sweep harness (src/harness/): grid
 * expansion, the determinism regression the thread-pool runner relies
 * on (one EventQueue universe per job), exception isolation, host
 * wall-clock timeouts, and the machine-readable sweep report.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/piranha.h"
#include "stats/json.h"

namespace piranha {
namespace {

WorkloadFactory
oltpFactory(std::uint64_t seed = 1)
{
    return [seed] { return std::make_unique<OltpWorkload>(
                        OltpParams{}, seed); };
}

SweepPoint
smallPoint(std::string label, unsigned cpus = 2,
           std::uint64_t work = 48)
{
    SweepPoint pt;
    pt.label = std::move(label);
    pt.config = configPn(cpus);
    pt.workload = WorkloadDecl{"OLTP", oltpFactory(), work};
    return pt;
}

TEST(SweepSpec, ExpandsGridInDeclarationOrder)
{
    SweepSpec spec("grid");
    spec.addConfig(configPn(1)).addConfig(configPn(2));
    spec.addWorkload("OLTP", oltpFactory(), 16)
        .addWorkload("DSS",
                     [] { return std::make_unique<DssWorkload>(); }, 4);
    spec.addPoint(smallPoint("extra"));

    std::vector<SweepPoint> pts = spec.expand();
    ASSERT_EQ(pts.size(), 5u);
    EXPECT_EQ(pts[0].label, "P1/OLTP");
    EXPECT_EQ(pts[1].label, "P1/DSS");
    EXPECT_EQ(pts[2].label, "P2/OLTP");
    EXPECT_EQ(pts[3].label, "P2/DSS");
    EXPECT_EQ(pts[4].label, "extra");
    EXPECT_EQ(pts[2].workload.totalWork, 16u);
}

/**
 * The determinism regression: the same SimConfig + seed must produce
 * bit-identical final stats on every execution — serial, repeated,
 * or on the thread-pool runner. This is the property that makes
 * host-parallel sweeps safe.
 */
TEST(SweepRunner, SameConfigAndSeedIsBitIdentical)
{
    SweepRunner runner(SweepOptions{.threads = 1});

    JobResult a = runner.runJob(smallPoint("a"));
    JobResult b = runner.runJob(smallPoint("b"));
    ASSERT_EQ(a.status, JobStatus::Ok);
    ASSERT_EQ(b.status, JobStatus::Ok);

    // Exact (not approximate) equality, across every named stat and
    // the full serialized StatGroup tree.
    EXPECT_EQ(a.run.execTime, b.run.execTime);
    EXPECT_EQ(a.stats, b.stats);
    EXPECT_EQ(a.statTree.dump(), b.statTree.dump());
}

TEST(SweepRunner, ThreadPoolDoesNotPerturbResults)
{
    JobResult serial =
        SweepRunner(SweepOptions{.threads = 1}).runJob(smallPoint("s"));
    ASSERT_EQ(serial.status, JobStatus::Ok);

    // Four copies of the same universe racing on four host threads:
    // every one must reproduce the serial result bit-exactly.
    std::vector<SweepPoint> pts;
    for (int i = 0; i < 4; ++i)
        pts.push_back(smallPoint(strFormat("copy%d", i)));
    SweepReport rep = SweepRunner(SweepOptions{.threads = 4})
                          .run("determinism", pts);
    EXPECT_EQ(rep.threads, 4u);
    ASSERT_EQ(rep.jobs.size(), 4u);
    for (const JobResult &j : rep.jobs) {
        ASSERT_EQ(j.status, JobStatus::Ok) << j.label << ": " << j.error;
        EXPECT_EQ(j.run.execTime, serial.run.execTime) << j.label;
        EXPECT_EQ(j.stats, serial.stats) << j.label;
        EXPECT_EQ(j.statTree.dump(), serial.statTree.dump()) << j.label;
    }
}

TEST(SweepRunner, DifferentSeedsDiffer)
{
    SweepRunner runner(SweepOptions{.threads = 1});
    SweepPoint p1 = smallPoint("seed1");
    SweepPoint p2 = smallPoint("seed2");
    p2.workload.make = oltpFactory(2);
    JobResult a = runner.runJob(p1);
    JobResult b = runner.runJob(p2);
    ASSERT_EQ(a.status, JobStatus::Ok);
    ASSERT_EQ(b.status, JobStatus::Ok);
    EXPECT_NE(a.statTree.dump(), b.statTree.dump());
}

TEST(SweepRunner, CrashingJobIsIsolated)
{
    std::vector<SweepPoint> pts;
    pts.push_back(smallPoint("good0", 1, 16));
    SweepPoint bad = smallPoint("bad", 1, 16);
    bad.workload.make = []() -> std::unique_ptr<Workload> {
        throw std::runtime_error("deliberate config crash");
    };
    pts.push_back(bad);
    SweepPoint null_wl = smallPoint("null", 1, 16);
    null_wl.workload.make = [] { return std::unique_ptr<Workload>(); };
    pts.push_back(null_wl);
    pts.push_back(smallPoint("good1", 1, 16));

    SweepReport rep = SweepRunner(SweepOptions{.threads = 2})
                          .run("isolation", pts);
    ASSERT_EQ(rep.jobs.size(), 4u);
    EXPECT_EQ(rep.jobs[0].status, JobStatus::Ok);
    EXPECT_EQ(rep.jobs[1].status, JobStatus::Failed);
    EXPECT_NE(rep.jobs[1].error.find("deliberate config crash"),
              std::string::npos);
    EXPECT_EQ(rep.jobs[2].status, JobStatus::Failed);
    EXPECT_EQ(rep.jobs[3].status, JobStatus::Ok);
    EXPECT_EQ(rep.count(JobStatus::Failed), 2u);
    EXPECT_EQ(rep.count(JobStatus::Ok), 2u);
}

TEST(SweepRunner, HostTimeoutStopsRunawayJob)
{
    // Far more work than a few milliseconds of host time can simulate.
    SweepPoint pt = smallPoint("runaway", 8, 100000);
    SweepOptions opts;
    opts.threads = 1;
    opts.jobTimeoutSec = 0.02;
    JobResult jr = SweepRunner(opts).runJob(pt);
    EXPECT_EQ(jr.status, JobStatus::TimedOut);
    EXPECT_FALSE(jr.error.empty());
}

/**
 * A worker that ignores the cooperative timeout entirely (custom jobs
 * never see the abort hook) used to wedge its pool slot for as long
 * as it pleased. Now the monitor abandons it after the grace window:
 * the job is closed as TimedOut with leaked_worker set, the sweep
 * finishes without waiting for the stuck thread, and the leaked
 * thread can never write into sweep state again.
 */
TEST(SweepRunner, UnresponsiveWorkerIsAbandonedAndFlagged)
{
    std::vector<SweepPoint> pts;
    SweepPoint stuck;
    stuck.label = "stuck";
    stuck.custom = []() -> CustomResult {
        std::this_thread::sleep_for(std::chrono::seconds(2));
        return {};
    };
    pts.push_back(stuck);
    for (int i = 0; i < 2; ++i) {
        SweepPoint ok;
        ok.label = "ok" + std::to_string(i);
        ok.custom = []() -> CustomResult {
            CustomResult cr;
            cr.stats["ran"] = 1;
            return cr;
        };
        pts.push_back(ok);
    }

    SweepOptions opts;
    opts.threads = 2;
    opts.jobTimeoutSec = 0.05;
    opts.killGraceSec = 0.1;
    auto t0 = std::chrono::steady_clock::now();
    SweepReport rep = SweepRunner(opts).run("leak", pts);
    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();

    // Returned long before the stuck thread's 2 s sleep finished.
    EXPECT_LT(elapsed, 1.5);
    EXPECT_EQ(rep.jobs[0].status, JobStatus::TimedOut);
    EXPECT_TRUE(rep.jobs[0].leakedWorker);
    EXPECT_EQ(rep.jobs[1].status, JobStatus::Ok);
    EXPECT_EQ(rep.jobs[2].status, JobStatus::Ok);

    // The leak is report-visible, not just a stderr line.
    JsonValue root = rep.toJson(false);
    EXPECT_EQ(root.at("jobs_leaked").asNumber(), 1.0);
    EXPECT_TRUE(
        root.at("jobs").at(0).at("leaked_worker").asBool());
}

/**
 * Configurations that force the parallel intra-run engine back to the
 * serial engine (fault plans pin the event schedule) used to say so
 * only on stderr; the fallback is now recorded per job in the report.
 */
TEST(SweepReport, EngineFallbackIsRecordedInJson)
{
    SweepPoint faulted = smallPoint("faulted", 2, 16);
    faulted.config.faults.enabled = true;
    faulted.config.faults.count = 1;
    std::vector<SweepPoint> pts = {smallPoint("plain", 2, 16),
                                   faulted};

    SweepOptions opts;
    opts.threads = 1;
    opts.engine = EngineKind::Parallel;
    SweepReport rep = SweepRunner(opts).run("fallback", pts);

    ASSERT_EQ(rep.jobs.size(), 2u);
    EXPECT_FALSE(rep.jobs[0].run.engineFallback);
    EXPECT_TRUE(rep.jobs[1].run.engineFallback);

    JsonValue root = rep.toJson(false);
    EXPECT_EQ(root.at("jobs").at(0).find("engine_fallback"), nullptr);
    EXPECT_TRUE(root.at("jobs").at(1).at("engine_fallback").asBool());
}

TEST(SweepReport, JsonIsParseableAndComplete)
{
    std::vector<SweepPoint> pts;
    pts.push_back(smallPoint("p0", 1, 16));
    pts.push_back(smallPoint("p1", 2, 16));
    SweepReport rep =
        SweepRunner(SweepOptions{.threads = 2}).run("mini", pts);

    JsonValue v = parseJson(rep.toJson().dump());
    EXPECT_EQ(v.at("sweep").asString(), "mini");
    EXPECT_DOUBLE_EQ(v.at("jobs_total").asNumber(), 2.0);
    EXPECT_DOUBLE_EQ(v.at("jobs_failed").asNumber(), 0.0);
    ASSERT_EQ(v.at("jobs").size(), 2u);

    const JsonValue &j0 = v.at("jobs").at(0);
    EXPECT_EQ(j0.at("label").asString(), "p0");
    EXPECT_EQ(j0.at("status").asString(), "ok");
    EXPECT_EQ(j0.at("config").asString(), "P1");
    EXPECT_GT(j0.at("stats").at("exec_time_ps").asNumber(), 0.0);
    EXPECT_GT(j0.at("stats").at("instructions").asNumber(), 0.0);
    // Full stat tree rides along by default...
    EXPECT_EQ(j0.at("stat_tree").at("name").asString(), "system");

    // ...and can be omitted.
    SweepOptions lean;
    lean.threads = 1;
    lean.captureStatTree = false;
    SweepReport rep2 = SweepRunner(lean).run("mini", pts);
    JsonValue v2 = parseJson(rep2.toJson().dump());
    EXPECT_EQ(v2.at("jobs").at(0).find("stat_tree"), nullptr);

    // Label lookup.
    EXPECT_NE(rep.job("p1"), nullptr);
    EXPECT_EQ(rep.job("absent"), nullptr);
}

TEST(SweepReport, WritesJsonFile)
{
    std::vector<SweepPoint> pts;
    pts.push_back(smallPoint("p0", 1, 8));
    SweepReport rep =
        SweepRunner(SweepOptions{.threads = 1}).run("filetest", pts);

    std::string path =
        testing::TempDir() + "/piranha_sweep_report.json";
    ASSERT_TRUE(rep.writeJsonFile(path));
    std::ifstream is(path);
    std::stringstream buf;
    buf << is.rdbuf();
    JsonValue v = parseJson(buf.str());
    EXPECT_EQ(v.at("sweep").asString(), "filetest");
}

} // namespace
} // namespace piranha
