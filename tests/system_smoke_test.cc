/**
 * @file
 * End-to-end smoke tests of the public API: every Table-1
 * configuration runs every workload for a small amount of work, the
 * results are sane (non-zero time, fractions sum to ~1, misses
 * categorized), and repeated runs are bit-identical (deterministic
 * simulation).
 */

#include <gtest/gtest.h>

#include "core/piranha.h"

namespace piranha {
namespace {

struct SmokeCase
{
    const char *config;
    SystemConfig (*make)();
};

SystemConfig makeP1() { return configP1(); }
SystemConfig makeP8() { return configP8(); }
SystemConfig makeOOO() { return configOOO(1); }
SystemConfig makeINO() { return configINO(); }
SystemConfig makeP8F() { return configP8F(); }
SystemConfig makePess() { return configP8Pessimistic(); }

class SystemSmoke : public ::testing::TestWithParam<SmokeCase>
{
};

TEST_P(SystemSmoke, OltpRunsAndReportsSanely)
{
    OltpWorkload wl;
    PiranhaSystem sys(GetParam().make());
    RunResult r = sys.run(wl, 30);
    EXPECT_GT(r.execTime, 0u);
    EXPECT_EQ(r.work, 30u * sys.totalCpus());
    double frac_sum = r.busyFrac + r.l2HitStallFrac +
                      r.l2MissStallFrac + r.idleFrac;
    EXPECT_NEAR(frac_sum, 1.0, 0.01);
    EXPECT_GT(r.instructions, 1000.0);
    EXPECT_GT(r.misses.total(), 0.0);
}

TEST_P(SystemSmoke, DssRunsAndReportsSanely)
{
    DssWorkload wl;
    PiranhaSystem sys(GetParam().make());
    RunResult r = sys.run(wl, 2);
    EXPECT_GT(r.execTime, 0u);
    EXPECT_GT(r.busyFrac, 0.3); // DSS is compute-heavy everywhere
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SystemSmoke,
    ::testing::Values(SmokeCase{"P1", makeP1}, SmokeCase{"P8", makeP8},
                      SmokeCase{"OOO", makeOOO},
                      SmokeCase{"INO", makeINO},
                      SmokeCase{"P8F", makeP8F},
                      SmokeCase{"P8pess", makePess}),
    [](const ::testing::TestParamInfo<SmokeCase> &info) {
        return std::string(info.param.config);
    });

TEST(SystemSmoke, MultiNodeConfigurations)
{
    for (unsigned nodes : {2u, 3u, 4u}) {
        OltpWorkload wl;
        PiranhaSystem sys(configPn(2, nodes));
        RunResult r = sys.run(wl, 20);
        EXPECT_EQ(r.work, 20u * 2 * nodes) << nodes << " nodes";
        // Multi-node runs must show remote traffic.
        EXPECT_GT(r.misses.memRemote + r.misses.remoteDirty, 0.0);
    }
}

TEST(SystemSmoke, DeterministicAcrossRuns)
{
    auto run_once = [] {
        OltpWorkload wl;
        PiranhaSystem sys(configPn(4, 2));
        return sys.run(wl, 40);
    };
    RunResult a = run_once();
    RunResult b = run_once();
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.misses.l2Hit, b.misses.l2Hit);
    EXPECT_EQ(a.misses.l2Fwd, b.misses.l2Fwd);
}

TEST(SystemSmoke, StatsReportProducesOutput)
{
    OltpWorkload wl;
    PiranhaSystem sys(configP1());
    sys.run(wl, 10);
    std::ostringstream os;
    sys.stats().report(os);
    std::string out = os.str();
    EXPECT_NE(out.find("l2_hit"), std::string::npos);
    EXPECT_NE(out.find("transfers"), std::string::npos);
    EXPECT_NE(out.find("page_hits"), std::string::npos);
}

} // namespace
} // namespace piranha
