/**
 * @file
 * Alpha-subset ISA tests: encode/decode round trips over the real
 * instruction formats, the assembler (labels, literal forms, ldiq
 * expansion), and whole programs executing on the timing cores with
 * instructions and data flowing through the simulated coherent
 * memory — including a multi-core LL/SC atomic-counter kernel.
 */

#include <gtest/gtest.h>

#include "cpu/core.h"
#include "isa/isa_core.h"
#include "test_system.h"

namespace piranha {
namespace {

TEST(Isa, EncodeDecodeRoundTripAllFormats)
{
    Pcg32 rng(1);
    std::vector<AlphaOp> ops = {
        AlphaOp::LDA, AlphaOp::LDQ, AlphaOp::STQ,  AlphaOp::LDQ_L,
        AlphaOp::BR,  AlphaOp::BEQ, AlphaOp::INTA, AlphaOp::INTL,
        AlphaOp::INTS};
    for (int t = 0; t < 5000; ++t) {
        AlphaInstr i;
        i.op = ops[rng.below(static_cast<std::uint32_t>(ops.size()))];
        i.ra = rng.below(32);
        i.rb = rng.below(32);
        i.rc = rng.below(32);
        if (alphaIsBranch(i.op)) {
            i.disp = static_cast<std::int32_t>(rng.below(1 << 20)) -
                     (1 << 19);
        } else if (alphaIsMemory(i.op)) {
            i.disp = static_cast<std::int32_t>(rng.below(1 << 16)) -
                     (1 << 15);
        } else {
            i.useLit = rng.chance(0.5);
            i.lit = static_cast<std::uint8_t>(rng.below(256));
            i.func = static_cast<std::uint8_t>(AlphaFunc::ADDQ);
        }
        auto back = AlphaInstr::decode(i.encode());
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(back->op, i.op);
        EXPECT_EQ(back->ra, i.ra);
        if (alphaIsMemory(i.op) || alphaIsBranch(i.op))
            EXPECT_EQ(back->disp, i.disp);
        if (alphaIsOperate(i.op)) {
            EXPECT_EQ(back->useLit, i.useLit);
            EXPECT_EQ(back->func, i.func);
            EXPECT_EQ(back->rc, i.rc);
        }
    }
}

TEST(Isa, DisasmReadable)
{
    AlphaInstr i;
    i.op = AlphaOp::INTA;
    i.func = static_cast<std::uint8_t>(AlphaFunc::ADDQ);
    i.ra = 1;
    i.rb = 2;
    i.rc = 3;
    EXPECT_EQ(i.disasm(), "addq r1, r2, r3");
}

TEST(Assembler, LabelsAndBranches)
{
    AlphaProgram p = assembleAlpha(R"(
        ; count down from 3
        ldiq r1, 3
loop:   subq r1, #1, r1
        bne r1, loop
        call_pal halt
    )",
                                   0x10000);
    EXPECT_GE(p.words.size(), 4u);
    EXPECT_EQ(p.symbols.count("loop"), 1u);
    // The bne must branch backwards to `loop`.
    auto bne = AlphaInstr::decode(
        p.words[(p.symbol("loop") - p.base) / 4 + 1]);
    ASSERT_TRUE(bne.has_value());
    EXPECT_EQ(bne->op, AlphaOp::BNE);
    EXPECT_EQ(bne->disp, -2);
}

TEST(Assembler, LdiqBuildsLargeConstants)
{
    for (std::uint64_t v :
         {0ULL, 1ULL, 0x7fffULL, 0x8000ULL, 0xdeadbeefULL,
          0x400000000ULL, 0xfedcba9876543210ULL}) {
        AlphaProgram p = assembleAlpha(
            strFormat("ldiq r5, %llu\n call_pal halt\n",
                      static_cast<unsigned long long>(v)),
            0x10000);
        // Execute functionally without memory ops.
        IsaMachine m;
        m.fetchWord = [&](Addr a) {
            return p.words[(a - p.base) / 4];
        };
        IsaCore core(m, 0, p.base);
        while (!core.halted()) {
            StreamOp op = core.next();
            ASSERT_NE(op.kind, StreamOp::Kind::Load);
            if (op.kind == StreamOp::Kind::Done)
                break;
        }
        EXPECT_EQ(core.reg(5), v) << "value " << std::hex << v;
    }
}

/** Load a program image into the simulated memory of a system. */
void
loadProgram(TestSystem &sys, const AlphaProgram &p)
{
    for (std::size_t i = 0; i < p.words.size(); ++i) {
        Addr a = p.base + i * 4;
        unsigned home = sys.amap.home(a);
        sys.chips[home]->memory().line(a).data.write(
            static_cast<unsigned>(a & (lineBytes - 1)), 4, p.words[i]);
    }
}

IsaMachine
machineFor(TestSystem &sys)
{
    IsaMachine m;
    m.fetchWord = [&sys](Addr a) {
        unsigned home = sys.amap.home(a);
        return static_cast<std::uint32_t>(
            sys.chips[home]->memory().peek(a).data.read(
                static_cast<unsigned>(a & (lineBytes - 1)), 4));
    };
    return m;
}

TEST(IsaSystem, SumLoopThroughCoherentMemory)
{
    // Sum an array of 10 quadwords living in simulated memory.
    TestSystem sys(1, 1);
    Addr data = 0x2000000;
    for (int i = 0; i < 10; ++i)
        sys.chips[0]->memory().poke64(data + i * 8, 100 + i);

    AlphaProgram p = assembleAlpha(R"(
        ldiq r1, 0x2000000    ; array base
        ldiq r2, 10           ; count
        bis r31, r31, r3      ; sum = 0
loop:   ldq r4, 0(r1)
        addq r3, r4, r3
        lda r1, 8(r1)
        subq r2, #1, r2
        bne r2, loop
        bis r3, r31, r16
        call_pal putint
        call_pal halt
    )",
                                   0x1000000);
    loadProgram(sys, p);
    IsaMachine m = machineFor(sys);
    IsaCore ic(m, 0, p.base);
    Core core(sys.eq, "cpu0", sys.chips[0]->clock(),
              sys.chips[0]->dl1(0), sys.chips[0]->il1(0),
              CoreParams{});
    core.start(&ic);
    sys.eq.run();
    EXPECT_TRUE(ic.halted());
    EXPECT_EQ(ic.reg(3), 1045u + 0u); // 100+101+...+109 = 1045
    EXPECT_EQ(ic.console(), "1045");
    EXPECT_GT(core.statInstrs.value(), 40.0);
}

TEST(IsaSystem, StoresVisibleAcrossCores)
{
    TestSystem sys(1, 2);
    Addr flag = 0x3000000;
    AlphaProgram writer = assembleAlpha(R"(
        ldiq r1, 0x3000000
        ldiq r2, 0x77
        stq r2, 0(r1)
        call_pal halt
    )",
                                        0x1000000);
    AlphaProgram reader = assembleAlpha(R"(
        ldiq r1, 0x3000000
wait:   ldq r2, 0(r1)
        beq r2, wait
        call_pal halt
    )",
                                        0x1100000);
    loadProgram(sys, writer);
    loadProgram(sys, reader);
    IsaMachine m = machineFor(sys);
    IsaCore w(m, 0, writer.base), r(m, 1, reader.base);
    Core c0(sys.eq, "cpu0", sys.chips[0]->clock(),
            sys.chips[0]->dl1(0), sys.chips[0]->il1(0), CoreParams{});
    Core c1(sys.eq, "cpu1", sys.chips[0]->clock(),
            sys.chips[0]->dl1(1), sys.chips[0]->il1(1), CoreParams{});
    c0.start(&w);
    c1.start(&r);
    sys.eq.run();
    EXPECT_TRUE(w.halted());
    EXPECT_TRUE(r.halted());
    EXPECT_EQ(r.reg(2), 0x77u);
}

TEST(IsaSystem, LlScAtomicCounterMultiCoreMultiNode)
{
    // Four cores on two chips each add their id+1 to a shared counter
    // 50 times with a ldq_l/stq_c loop; the total must be exact.
    TestSystem sys(2, 2);
    Addr counter = 0x3000000;
    const char *src = R"(
        ; r16 = my increment; r17 = iterations
        ldiq r1, 0x3000000
again:  ldq_l r2, 0(r1)
        addq r2, r16, r2
        stq_c r2, 0(r1)
        beq r2, again       ; retry on failure
        subq r17, #1, r17
        bne r17, again
        call_pal halt
    )";
    AlphaProgram p = assembleAlpha(src, 0x1000000);
    loadProgram(sys, p);
    IsaMachine m = machineFor(sys);

    std::vector<std::unique_ptr<IsaCore>> ics;
    std::vector<std::unique_ptr<Core>> cores;
    std::uint64_t expected = 0;
    for (unsigned n = 0; n < 2; ++n) {
        for (unsigned c = 0; c < 2; ++c) {
            unsigned id = n * 2 + c;
            auto ic = std::make_unique<IsaCore>(
                m, static_cast<int>(id), p.base);
            ic->setReg(16, id + 1);
            ic->setReg(17, 50);
            expected += (id + 1) * 50;
            auto core = std::make_unique<Core>(
                sys.eq, strFormat("n%uc%u", n, c),
                sys.chips[n]->clock(), sys.chips[n]->dl1(c),
                sys.chips[n]->il1(c), CoreParams{});
            core->start(ic.get());
            cores.push_back(std::move(core));
            ics.push_back(std::move(ic));
        }
    }
    sys.eq.run();
    for (auto &ic : ics)
        EXPECT_TRUE(ic->halted());
    EXPECT_EQ(sys.load(0, 0, counter), expected);
}

TEST(IsaSystem, Wh64ClaimsLine)
{
    TestSystem sys(1, 1);
    AlphaProgram p = assembleAlpha(R"(
        ldiq r1, 0x4000000
        wh64 (r1)
        ldiq r2, 42
        stq r2, 0(r1)
        call_pal halt
    )",
                                   0x1000000);
    loadProgram(sys, p);
    IsaMachine m = machineFor(sys);
    IsaCore ic(m, 0, p.base);
    Core core(sys.eq, "cpu0", sys.chips[0]->clock(),
              sys.chips[0]->dl1(0), sys.chips[0]->il1(0),
              CoreParams{});
    core.start(&ic);
    sys.eq.run();
    EXPECT_TRUE(ic.halted());
    EXPECT_EQ(sys.load(0, 0, 0x4000000), 42u);
}

} // namespace
} // namespace piranha
