/**
 * @file
 * Serial-vs-parallel engine bit-identity (DESIGN.md §13): the same
 * seed and configuration run under the serial engine (to quiescence)
 * and under the parallel engine at any shard count must produce the
 * same stat tree to the last bit, the same canonical coherence trace,
 * and the same engine-invariant event count — plus mutation tests
 * that deliberately break the engine's safety argument and prove this
 * gate notices (the PR 2 fault-seeding philosophy applied to the
 * engine itself).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "check/trace.h"
#include "core/piranha.h"
#include "harness/sweep.h"
#include "stats/json_writer.h"

namespace piranha {
namespace {

struct ModeResult
{
    RunResult run;
    std::string statDump;
    std::vector<TraceEvent> trace;
};

/**
 * Run @p cfg under @p engine and return comparable results. Both
 * engines get per-chip tracers and drainStop, and the merged trace is
 * put in canonical order: per-chip streams concatenated in node order,
 * then stably sorted by tick — so equal-tick events order by (tick,
 * node, within-node order), which is engine-independent because
 * cross-node causality always spans nonzero latency.
 */
template <typename MakeWl>
ModeResult
runWith(SystemConfig cfg, EngineKind engine, unsigned shards,
        MakeWl make_wl, std::uint64_t work_per_cpu,
        ParallelHooks *hooks = nullptr)
{
    std::vector<std::unique_ptr<CoherenceTracer>> tracers;
    for (unsigned n = 0; n < cfg.nodes; ++n) {
        tracers.push_back(std::make_unique<CoherenceTracer>());
        cfg.chipTracers.push_back(tracers.back().get());
    }
    cfg.engine = engine;
    cfg.shards = shards;
    cfg.drainStop = true;
    cfg.parallelHooks = hooks;
    auto wl = make_wl();
    PiranhaSystem sys(cfg);
    ModeResult m;
    m.run = sys.run(*wl, work_per_cpu);
    m.statDump = statGroupToJson(sys.stats()).dump(0);
    for (unsigned n = 0; n < tracers.size(); ++n)
        for (const TraceEvent &e : tracers[n]->events())
            m.trace.push_back(e);
    std::stable_sort(m.trace.begin(), m.trace.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.tick < b.tick;
                     });
    return m;
}

void
expectSameSimulation(const ModeResult &a, const ModeResult &b,
                     const std::string &what)
{
    EXPECT_EQ(flattenRunResultComparable(a.run),
              flattenRunResultComparable(b.run))
        << what;
    EXPECT_EQ(a.statDump, b.statDump) << what;
    EXPECT_EQ(a.run.eventsEquivalent, b.run.eventsEquivalent) << what;
#if PIRANHA_COHERENCE_TRACE
    ASSERT_EQ(a.trace.size(), b.trace.size()) << what;
    for (std::size_t i = 0; i < a.trace.size(); ++i)
        EXPECT_TRUE(a.trace[i] == b.trace[i])
            << what << ": trace diverges at event " << i;
#endif
}

template <typename MakeWl>
void
expectEngineIdentical(const SystemConfig &cfg, MakeWl make_wl,
                      std::uint64_t work_per_cpu,
                      std::initializer_list<unsigned> shard_counts,
                      const std::string &what)
{
    ModeResult serial =
        runWith(cfg, EngineKind::Serial, 0, make_wl, work_per_cpu);
    EXPECT_FALSE(serial.run.aborted) << what;
    EXPECT_EQ(serial.run.shardsUsed, 0u) << what;
    for (unsigned shards : shard_counts) {
        ParallelHooks hooks; // all-default: behavior-neutral tripwires
        ModeResult par = runWith(cfg, EngineKind::Parallel, shards,
                                 make_wl, work_per_cpu, &hooks);
        std::string label =
            what + strFormat(" [shards=%u]", shards);
        EXPECT_FALSE(par.run.aborted) << label;
        EXPECT_EQ(par.run.shardsUsed,
                  shards ? std::min(shards, cfg.nodes) : cfg.nodes)
            << label;
        EXPECT_GT(par.run.parallelEpochs, 0u) << label;
        // Safety tripwires must never fire on an unmutated run.
        EXPECT_EQ(hooks.lateArrivals.load(), 0u) << label;
        EXPECT_EQ(hooks.reorderedFlushes.load(), 0u) << label;
        expectSameSimulation(serial, par, label);
    }
}

SystemConfig
multichipCfg()
{
    return configPn(2, 4); // 4 chips x 2 CPUs: room for 1/2/4 shards
}

TEST(ParallelIdentity, OltpMultichipAcrossSeedsAndShards)
{
    for (std::uint64_t seed : {1ull, 5ull, 9ull}) {
        expectEngineIdentical(
            multichipCfg(),
            [seed] {
                return std::make_unique<OltpWorkload>(OltpParams{},
                                                      seed);
            },
            12, {1, 2, 4, 8},
            strFormat("Pn(2,4)/OLTP seed %llu",
                      (unsigned long long)seed));
    }
}

TEST(ParallelIdentity, DssMultichip)
{
    expectEngineIdentical(
        multichipCfg(),
        [] { return std::make_unique<DssWorkload>(DssParams{}, 3); },
        1, {2, 4}, "Pn(2,4)/DSS");
}

TEST(ParallelIdentity, OltpTwoChipsOfFour)
{
    expectEngineIdentical(
        configPn(4, 2),
        [] {
            return std::make_unique<OltpWorkload>(OltpParams{}, 5);
        },
        12, {1, 2}, "Pn(4,2)/OLTP");
}

TEST(ParallelIdentity, SingleChipDegenerates)
{
    // One chip has no fabric at all: the parallel engine must still
    // reproduce the serial run exactly (window-capped epochs only
    // shift the fast path's inline/evented split, which
    // eventsEquivalent absorbs).
    expectEngineIdentical(
        configP8(),
        [] {
            return std::make_unique<OltpWorkload>(OltpParams{}, 2);
        },
        20, {1}, "P8/OLTP");
}

TEST(ParallelIdentity, StrictEventCountWithFastPathOff)
{
    // With the L1 fast path disabled there is no inline tier to
    // reshuffle, so even the raw executed-event count must match
    // exactly (same events, same flush events, different threads).
    SystemConfig cfg = multichipCfg();
    cfg.core.fastPath = false;
    auto mk = [] {
        return std::make_unique<OltpWorkload>(OltpParams{}, 7);
    };
    ModeResult serial = runWith(cfg, EngineKind::Serial, 0, mk, 10);
    for (unsigned shards : {2u, 4u}) {
        ModeResult par =
            runWith(cfg, EngineKind::Parallel, shards, mk, 10);
        EXPECT_EQ(serial.run.eventsExecuted, par.run.eventsExecuted)
            << "shards=" << shards;
        expectSameSimulation(serial, par,
                             strFormat("strict shards=%u", shards));
    }
}

TEST(ParallelIdentity, DeterministicAcrossShardCountsAndRepeats)
{
    // Parallel runs must be bit-identical to each other: across
    // different shard counts and across repeated runs at the same
    // shard count (no dependence on host scheduling).
    auto mk = [] {
        return std::make_unique<OltpWorkload>(OltpParams{}, 4);
    };
    SystemConfig cfg = multichipCfg();
    ModeResult first =
        runWith(cfg, EngineKind::Parallel, 2, mk, 12);
    ModeResult repeat =
        runWith(cfg, EngineKind::Parallel, 2, mk, 12);
    expectSameSimulation(first, repeat, "repeat at shards=2");
    for (unsigned shards : {1u, 3u, 4u}) {
        ModeResult other =
            runWith(cfg, EngineKind::Parallel, shards, mk, 12);
        expectSameSimulation(first, other,
                             strFormat("shards=2 vs shards=%u",
                                       shards));
    }
}

// ---------------------------------------------------------------------
// Mutation tests: break the safety argument on purpose and prove the
// gate is live. A gate that cannot fail is not a gate.

TEST(ParallelMutation, LookaheadShortByOneTickTripsTheGate)
{
    // epochStretch=1 claims one tick more lookahead than the
    // interconnect guarantees. The engine's invariant — every staged
    // arrival lies strictly in the destination's future — must now be
    // violated somewhere in the run, and the lateArrivals tripwire
    // (asserted zero by every identity test above) catches it.
    SystemConfig cfg = multichipCfg();
    auto mk = [] {
        return std::make_unique<OltpWorkload>(OltpParams{}, 5);
    };
    ParallelHooks hooks;
    hooks.epochStretch = 1;
    ModeResult bad =
        runWith(cfg, EngineKind::Parallel, 4, mk, 12, &hooks);
    EXPECT_GT(hooks.lateArrivals.load(), 0u);
}

TEST(ParallelMutation, GrosslyShortLookaheadDivergesObservably)
{
    // Stretching the epoch by a full lookahead makes cross-shard
    // arrivals miss their ticks outright (they clamp forward), so the
    // simulation itself — not just the tripwire — must diverge from
    // the serial reference, proving the stat/trace comparison would
    // catch a real lookahead bug.
    SystemConfig cfg = multichipCfg();
    auto mk = [] {
        return std::make_unique<OltpWorkload>(OltpParams{}, 5);
    };
    ModeResult serial = runWith(cfg, EngineKind::Serial, 0, mk, 12);
    ParallelHooks hooks;
    hooks.epochStretch = 11000; // ~= the real cross-chip lookahead
    ModeResult bad =
        runWith(cfg, EngineKind::Parallel, 4, mk, 12, &hooks);
    EXPECT_GT(hooks.lateArrivals.load(), 0u);
    EXPECT_NE(serial.statDump, bad.statDump);
}

TEST(ParallelMutation, ReorderedMailboxDrainDivergesObservably)
{
    // Reversing the canonical (sendTick, src, seq) flush order is the
    // "mailbox drained in the wrong order" bug. Same-tick arrivals at
    // a node then deliver in a different order, which the canonical
    // trace and stat comparison must expose.
    SystemConfig cfg = multichipCfg();
    auto mk = [] {
        return std::make_unique<OltpWorkload>(OltpParams{}, 5);
    };
    ModeResult serial = runWith(cfg, EngineKind::Serial, 0, mk, 12);
    ParallelHooks hooks;
    hooks.reverseDrain = true;
    ModeResult bad =
        runWith(cfg, EngineKind::Parallel, 4, mk, 12, &hooks);
    EXPECT_GT(hooks.reorderedFlushes.load(), 0u);
    bool trace_differs = bad.trace.size() != serial.trace.size();
    for (std::size_t i = 0;
         !trace_differs && i < serial.trace.size(); ++i)
        trace_differs = !(serial.trace[i] == bad.trace[i]);
    EXPECT_TRUE(serial.statDump != bad.statDump || trace_differs);
}

} // namespace
} // namespace piranha
