/**
 * @file
 * Single-chip integration tests: the full L1 / ICS / L2 / memory
 * stack with intra-chip coherence (paper §2.1-§2.4).
 */

#include <gtest/gtest.h>

#include "test_system.h"

namespace piranha {
namespace {

constexpr Addr kBase = 0x100000;

TEST(Chip, LoadReturnsMemoryContents)
{
    TestSystem sys(1, 2);
    sys.chips[0]->memory().poke64(kBase, 0xdeadbeefcafef00dULL);
    FillSource src;
    EXPECT_EQ(sys.load(0, 0, kBase, 8, &src), 0xdeadbeefcafef00dULL);
    EXPECT_EQ(src, FillSource::MemLocal);
    // Second load hits the L1.
    EXPECT_EQ(sys.load(0, 0, kBase, 8, &src), 0xdeadbeefcafef00dULL);
    EXPECT_EQ(src, FillSource::L1);
}

TEST(Chip, CleanExclusiveGrantOnLoad)
{
    // A dL1 load with no other sharers is granted an exclusive copy
    // so a later store needs no upgrade.
    TestSystem sys(1, 2);
    sys.load(0, 0, kBase);
    sys.settle();
    EXPECT_EQ(sys.chips[0]->dl1(0).lineState(kBase), L1State::E);
    sys.store(0, 0, kBase, 1);
    sys.settle();
    EXPECT_EQ(sys.chips[0]->dl1(0).lineState(kBase), L1State::M);
    EXPECT_EQ(sys.chips[0]->dl1(0).statUpgrades.value(), 0.0);
}

TEST(Chip, StoreForwardedFromStoreBuffer)
{
    TestSystem sys(1, 1);
    FillSource src;
    sys.store(0, 0, kBase + 8, 0x1234);
    EXPECT_EQ(sys.load(0, 0, kBase + 8, 8, &src), 0x1234u);
    sys.settle();
    EXPECT_EQ(sys.load(0, 0, kBase + 8), 0x1234u);
}

TEST(Chip, PartialStoreMergesWithMemory)
{
    TestSystem sys(1, 1);
    sys.chips[0]->memory().poke64(kBase, 0x1111111111111111ULL);
    sys.store(0, 0, kBase + 2, 0xaa, 1);
    sys.settle();
    EXPECT_EQ(sys.load(0, 0, kBase), 0x1111111111aa1111ULL);
}

TEST(Chip, StoreVisibleToOtherCpuViaForward)
{
    TestSystem sys(1, 8);
    sys.store(0, 0, kBase, 0x42);
    sys.settle();
    FillSource src;
    EXPECT_EQ(sys.load(0, 3, kBase, 8, &src), 0x42u);
    // The data came from the owning L1, not from memory.
    EXPECT_EQ(src, FillSource::L2Fwd);
    EXPECT_GT(sys.chips[0]->missBreakdown().l2Fwd, 0.0);
}

TEST(Chip, WriteInvalidatesAllSharers)
{
    TestSystem sys(1, 8);
    sys.chips[0]->memory().poke64(kBase, 7);
    for (unsigned cpu = 1; cpu < 8; ++cpu)
        EXPECT_EQ(sys.load(0, cpu, kBase), 7u);
    sys.settle();
    sys.store(0, 0, kBase, 8);
    sys.settle();
    for (unsigned cpu = 1; cpu < 8; ++cpu) {
        EXPECT_EQ(sys.chips[0]->dl1(cpu).lineState(kBase), L1State::I)
            << "cpu " << cpu;
        EXPECT_EQ(sys.load(0, cpu, kBase), 8u) << "cpu " << cpu;
    }
}

TEST(Chip, InstructionCachesKeptCoherent)
{
    // Unlike other Alpha implementations, the iL1 is kept coherent by
    // hardware (paper §2.1).
    TestSystem sys(1, 2);
    sys.chips[0]->memory().poke64(kBase, 0x11223344);
    EXPECT_EQ(sys.ifetch(0, 1, kBase), 0x11223344u & 0xffffffffu);
    EXPECT_EQ(sys.chips[0]->il1(1).lineState(kBase), L1State::S);
    sys.store(0, 0, kBase, 0x55667788);
    sys.settle();
    EXPECT_EQ(sys.chips[0]->il1(1).lineState(kBase), L1State::I);
    EXPECT_EQ(sys.ifetch(0, 1, kBase), 0x55667788u);
}

TEST(Chip, NonInclusiveFillsBypassL2)
{
    // L1 misses that also miss in the L2 are filled directly from
    // memory without allocating an L2 line (paper §2.3).
    TestSystem sys(1, 1);
    for (unsigned i = 0; i < 16; ++i)
        sys.load(0, 0, kBase + i * lineBytes);
    sys.settle();
    double wb = 0;
    for (unsigned b = 0; b < 8; ++b)
        wb += sys.chips[0]->l2(b).statWbInstalls.value();
    EXPECT_EQ(wb, 0.0);
    EXPECT_EQ(sys.chips[0]->missBreakdown().l2Hit, 0.0);
}

TEST(Chip, L2ActsAsVictimCache)
{
    // Evicting a clean owner line from the L1 writes it back into
    // the L2; re-reading it hits the L2.
    TestSystem sys(1, 1);
    L1Params l1 = ChipParams{}.l1d;
    // Walk more lines than one L1 set can hold (2-way): three lines
    // mapping to the same set force an eviction.
    std::size_t sets = (l1.sizeBytes / (l1.assoc * lineBytes));
    Addr stride = static_cast<Addr>(sets) * lineBytes * 8; // same set+bank
    sys.chips[0]->memory().poke64(kBase, 111);
    sys.load(0, 0, kBase);
    sys.load(0, 0, kBase + stride);
    sys.load(0, 0, kBase + 2 * stride); // evicts kBase (LRU)
    sys.settle();
    EXPECT_EQ(sys.chips[0]->dl1(0).lineState(kBase), L1State::I);
    double wb = 0;
    for (unsigned b = 0; b < 8; ++b)
        wb += sys.chips[0]->l2(b).statWbInstalls.value();
    EXPECT_GT(wb, 0.0);
    FillSource src;
    EXPECT_EQ(sys.load(0, 0, kBase, 8, &src), 111u);
    EXPECT_EQ(src, FillSource::L2Hit);
}

TEST(Chip, DirtyVictimSurvivesL1AndL2Eviction)
{
    TestSystem sys(1, 1);
    L1Params l1 = ChipParams{}.l1d;
    std::size_t sets = (l1.sizeBytes / (l1.assoc * lineBytes));
    Addr stride = static_cast<Addr>(sets) * lineBytes * 8;
    sys.store(0, 0, kBase, 0xfeed);
    sys.load(0, 0, kBase + stride);
    sys.load(0, 0, kBase + 2 * stride);
    sys.settle();
    EXPECT_EQ(sys.load(0, 0, kBase), 0xfeedu);
}

TEST(Chip, UpgradeAfterSharedLoad)
{
    TestSystem sys(1, 2);
    sys.chips[0]->memory().poke64(kBase, 5);
    sys.load(0, 0, kBase);
    sys.load(0, 1, kBase); // both now share
    sys.settle();
    EXPECT_EQ(sys.chips[0]->dl1(0).lineState(kBase), L1State::S);
    sys.store(0, 0, kBase, 6);
    sys.settle();
    EXPECT_GT(sys.chips[0]->dl1(0).statUpgrades.value(), 0.0);
    EXPECT_EQ(sys.chips[0]->dl1(1).lineState(kBase), L1State::I);
    EXPECT_EQ(sys.load(0, 1, kBase), 6u);
}

TEST(Chip, Wh64GrantsWritableLineWithoutData)
{
    TestSystem sys(1, 2);
    sys.wh64(0, 0, kBase);
    sys.settle();
    EXPECT_EQ(sys.chips[0]->dl1(0).lineState(kBase), L1State::M);
    sys.store(0, 0, kBase, 0xabc);
    sys.settle();
    EXPECT_EQ(sys.load(0, 1, kBase), 0xabcu);
}

TEST(Chip, ExclusiveOwnershipMigratesBetweenCpus)
{
    TestSystem sys(1, 4);
    sys.store(0, 0, kBase, 1);
    sys.settle();
    sys.store(0, 1, kBase, 2); // FwdGetX from cpu0's dL1
    sys.settle();
    EXPECT_EQ(sys.chips[0]->dl1(0).lineState(kBase), L1State::I);
    EXPECT_EQ(sys.chips[0]->dl1(1).lineState(kBase), L1State::M);
    sys.store(0, 2, kBase, 3);
    sys.settle();
    EXPECT_EQ(sys.load(0, 3, kBase), 3u);
}

TEST(Chip, ManyLinesAcrossAllBanks)
{
    TestSystem sys(1, 4);
    for (unsigned i = 0; i < 256; ++i)
        sys.store(0, i % 4, kBase + i * lineBytes,
                  0xa000u + i);
    sys.settle();
    for (unsigned i = 0; i < 256; ++i)
        EXPECT_EQ(sys.load(0, (i + 1) % 4, kBase + i * lineBytes),
                  0xa000u + i);
}

} // namespace
} // namespace piranha
