/**
 * @file
 * Steady-state allocation accounting for the event kernel. This test
 * binary overrides the global operator new/delete with counting
 * versions (safe because every tests/*_test.cc links into its own
 * executable) and checks that, once warm, scheduling and executing
 * member events, pooled events and small-capture closures performs
 * zero heap allocations.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "sim/event_queue.h"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

} // namespace

void *
operator new(std::size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc{};
}

void *
operator new(std::size_t n, const std::nothrow_t &) noexcept
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(n ? n : 1);
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

namespace piranha {
namespace {

struct Counter
{
    std::uint64_t n = 0;
    void bump() { ++n; }
};

/** Allocations performed by @p body. */
template <class Fn>
std::uint64_t
allocsIn(Fn &&body)
{
    std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    body();
    return g_allocs.load(std::memory_order_relaxed) - before;
}

TEST(EventAlloc, MemberEventSchedulingIsAllocationFree)
{
    EventQueue eq;
    Counter c;
    MemberEvent<Counter, &Counter::bump> ev(&c, "bump");
    // Warm-up: first heap insertion may grow the far-heap vector.
    eq.scheduleIn(ev, 700000);
    eq.run();
    std::uint64_t allocs = allocsIn([&] {
        for (int i = 0; i < 10000; ++i) {
            eq.scheduleIn(ev, 2000); // wheel path
            eq.run();
            eq.scheduleIn(ev, 700000); // far-heap path
            eq.run();
        }
    });
    EXPECT_EQ(allocs, 0u);
    EXPECT_EQ(c.n, 20001u);
}

TEST(EventAlloc, PooledEventChurnIsAllocationFree)
{
    struct PayloadEvent final : Event
    {
        EventPool<PayloadEvent> *pool = nullptr;
        std::uint64_t *sink = nullptr;
        std::uint64_t payload = 0;
        void
        process() override
        {
            *sink += payload;
            pool->release(this);
        }
    };

    EventQueue eq;
    EventPool<PayloadEvent> pool;
    std::uint64_t sink = 0;
    // Warm-up to the in-flight high-water mark (3).
    for (int i = 0; i < 3; ++i) {
        PayloadEvent *ev = pool.acquire();
        ev->pool = &pool;
        ev->sink = &sink;
        ev->payload = 1;
        eq.scheduleIn(*ev, 2000 * (i + 1));
    }
    eq.run();
    std::uint64_t allocs = allocsIn([&] {
        for (int i = 0; i < 10000; ++i) {
            for (int k = 0; k < 3; ++k) {
                PayloadEvent *ev = pool.acquire();
                ev->pool = &pool;
                ev->sink = &sink;
                ev->payload = 1;
                eq.scheduleIn(*ev, 2000 * (k + 1));
            }
            eq.run();
        }
    });
    EXPECT_EQ(allocs, 0u);
    EXPECT_EQ(pool.size(), 3u);
    EXPECT_EQ(sink, 30003u);
}

TEST(EventAlloc, SmallCaptureClosureIsAllocationFreeOnceWarm)
{
    EventQueue eq;
    std::uint64_t n = 0;
    std::uint64_t *pn = &n;
    // Warm-up grows the lambda pool to the high-water mark.
    for (int i = 0; i < 4; ++i)
        eq.scheduleIn(2000 * (i + 1), [pn] { ++*pn; });
    eq.run();
    // A one-pointer capture fits std::function's small buffer, and
    // the pooled LambdaEvent is recycled: steady state allocates
    // nothing.
    std::uint64_t allocs = allocsIn([&] {
        for (int i = 0; i < 10000; ++i) {
            for (int k = 0; k < 4; ++k)
                eq.scheduleIn(2000 * (k + 1), [pn] { ++*pn; });
            eq.run();
        }
    });
    EXPECT_EQ(allocs, 0u);
    EXPECT_EQ(n, 40004u);
}

TEST(EventAlloc, DescheduleRescheduleIsAllocationFree)
{
    EventQueue eq;
    Counter c;
    MemberEvent<Counter, &Counter::bump> ev(&c, "bump");
    MemberEvent<Counter, &Counter::bump> far_ev(&c, "bump-far");
    eq.scheduleIn(far_ev, 700000);
    eq.run(); // warm the far heap
    std::uint64_t allocs = allocsIn([&] {
        for (int i = 0; i < 10000; ++i) {
            eq.scheduleIn(ev, 4000);
            eq.reschedule(ev, eq.curTick() + 8000);
            eq.deschedule(ev);
            eq.scheduleIn(far_ev, 700000);
            eq.deschedule(far_ev);
        }
    });
    // Far-heap deschedules leave stale entries that are lazily
    // reclaimed; the vector reaches a bounded high-water mark during
    // the loop, so allow the few growth reallocations and nothing
    // more (growth is geometric: ~log2(10000) doublings).
    EXPECT_LE(allocs, 20u);
    eq.run();
}

} // namespace
} // namespace piranha
