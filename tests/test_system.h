/**
 * @file
 * Shared test fixture: builds an N-node Piranha system and drives CPU
 * ports directly (no CPU timing model), with synchronous helpers for
 * protocol tests and asynchronous agents for the random tester.
 */

#ifndef PIRANHA_TESTS_TEST_SYSTEM_H
#define PIRANHA_TESTS_TEST_SYSTEM_H

#include <memory>
#include <vector>

#include "check/trace.h"
#include "sim/event_queue.h"
#include "sim/parallel_engine.h"
#include "system/chip.h"

namespace piranha {

/** Optional TestSystem behaviors beyond the classic serial fixture. */
struct TestSystemOptions
{
    /** Per-chip event queues driven by the parallel engine
     *  (DESIGN.md §13) instead of one shared serial queue. */
    bool parallel = false;
    unsigned shards = 0; //!< parallel worker count; 0 = one per chip
    /** Per-chip tracer override (size = nodes); required instead of
     *  ChipParams::tracer when parallel (tracers are not
     *  thread-safe across chips). */
    std::vector<CoherenceTracer *> chipTracers;
};

class TestSystem
{
  public:
    explicit TestSystem(unsigned nodes = 1, unsigned cpus = 8,
                        ChipParams params = ChipParams{},
                        TestSystemOptions opts = TestSystemOptions{})
        : parallel(opts.parallel)
    {
        amap.numNodes = nodes;
        if (parallel)
            for (unsigned n = 0; n < nodes; ++n)
                qs.push_back(std::make_unique<EventQueue>());
        if (nodes > 1)
            net = std::make_unique<Network>(queueFor(0), "net");
        params.cpus = cpus;
        for (unsigned n = 0; n < nodes; ++n) {
            ChipParams p = params;
            if (!opts.chipTracers.empty())
                p.tracer = opts.chipTracers[n];
            chips.push_back(std::make_unique<PiranhaChip>(
                queueFor(n), strFormat("node%u", n),
                static_cast<NodeId>(n), amap, p, net.get()));
        }
        if (net) {
            for (unsigned n = 0; n < nodes; ++n) {
                PiranhaChip *c = chips[n].get();
                net->addNode(static_cast<NodeId>(n),
                             [c](const NetPacket &p) {
                                 c->deliverNet(p);
                             });
            }
            Network::buildFullyConnected(*net);
        }
        shards = parallel
                     ? std::min(opts.shards ? opts.shards : nodes,
                                nodes)
                     : 1;
        shardOf.assign(nodes, 0);
        for (unsigned n = 0; parallel && n < nodes; ++n)
            shardOf[n] = n * shards / nodes;
        if (parallel && net) {
            std::vector<EventQueue *> queue_ptrs;
            for (auto &q : qs)
                queue_ptrs.push_back(q.get());
            fabric = std::make_unique<NetFabric>();
            Network *np = net.get();
            fabric->configure(
                std::move(queue_ptrs), shardOf, shards,
                [np](NetPacket &&p, NodeId at, Tick injected) {
                    np->arriveAt(std::move(p), at, injected);
                },
                nullptr);
            net->setFabric(fabric.get());
        }
    }

    EventQueue &queueFor(unsigned n) { return parallel ? *qs[n] : eq; }

    /** Latest tick any queue has reached. */
    Tick
    now() const
    {
        Tick t = eq.curTick();
        for (const auto &q : qs)
            t = std::max(t, q->curTick());
        return t;
    }

    /** Drive every queue to quiescence (or @p deadline); returns true
     *  when everything drained. */
    bool
    runUntil(Tick deadline = ~Tick(0))
    {
        if (!parallel)
            return eq.run(deadline);
        ShardPlan plan;
        for (auto &q : qs)
            plan.queues.push_back(q.get());
        plan.shardOf = shardOf;
        plan.shards = shards;
        plan.fabric = fabric.get();
        plan.lookahead = net ? net->minCrossLatency() : ~Tick(0);
        plan.deadline = deadline;
        ParallelEngine engine(std::move(plan));
        return !engine.run().deadlineHit;
    }

    /** Synchronous load: run the system until the access completes. */
    std::uint64_t
    load(unsigned node, unsigned cpu, Addr addr, unsigned size = 8,
         FillSource *src_out = nullptr)
    {
        bool done = false;
        std::uint64_t value = 0;
        MemReq req;
        req.op = MemOp::Load;
        req.addr = addr;
        req.size = static_cast<std::uint8_t>(size);
        chips[node]->dl1(cpu).access(req, [&](const MemRsp &r) {
            value = r.value;
            if (src_out)
                *src_out = r.source;
            done = true;
        });
        waitFor(done);
        return value;
    }

    /** Synchronous ifetch. */
    std::uint64_t
    ifetch(unsigned node, unsigned cpu, Addr addr,
           FillSource *src_out = nullptr)
    {
        bool done = false;
        std::uint64_t value = 0;
        MemReq req;
        req.op = MemOp::Ifetch;
        req.addr = addr;
        req.size = 4;
        chips[node]->il1(cpu).access(req, [&](const MemRsp &r) {
            value = r.value;
            if (src_out)
                *src_out = r.source;
            done = true;
        });
        waitFor(done);
        return value;
    }

    /** Synchronous store (completes into the store buffer). */
    void
    store(unsigned node, unsigned cpu, Addr addr, std::uint64_t value,
          unsigned size = 8)
    {
        bool done = false;
        MemReq req;
        req.op = MemOp::Store;
        req.addr = addr;
        req.size = static_cast<std::uint8_t>(size);
        req.value = value;
        chips[node]->dl1(cpu).access(req,
                                     [&](const MemRsp &) { done = true; });
        waitFor(done);
    }

    /** Synchronous write-hint (wh64). */
    void
    wh64(unsigned node, unsigned cpu, Addr addr)
    {
        bool done = false;
        MemReq req;
        req.op = MemOp::Wh64;
        req.addr = addr;
        chips[node]->dl1(cpu).access(req,
                                     [&](const MemRsp &) { done = true; });
        waitFor(done);
    }

    /** Drain every pending event (store buffers, protocol, network). */
    void settle() { runUntil(); }

    void
    waitFor(bool &flag)
    {
        if (parallel) {
            runUntil();
            if (!flag)
                panic("test system deadlock: queues drained while "
                      "waiting");
            return;
        }
        while (!flag) {
            if (!eq.step())
                panic("test system deadlock: event queue drained "
                      "while waiting");
        }
    }

    EventQueue eq;
    AddressMap amap;
    std::unique_ptr<Network> net;
    std::vector<std::unique_ptr<PiranhaChip>> chips;
    bool parallel = false;
    unsigned shards = 1;
    std::vector<unsigned> shardOf;
    std::vector<std::unique_ptr<EventQueue>> qs;
    std::unique_ptr<NetFabric> fabric;
};

/** An address homed at @p node (page-interleaved homes); @p line
 *  selects distinct lines within the chosen page. */
inline Addr
homedAt(const TestSystem &sys, unsigned node, unsigned line = 0)
{
    Addr a = 0x5000000 + line * lineBytes;
    while (sys.amap.home(a) != node)
        a += 1ULL << sys.amap.pageShift;
    return a;
}

/** Issue an access without waiting for completion. */
inline void
fire(TestSystem &sys, unsigned node, unsigned cpu, MemOp op, Addr a,
     std::uint64_t v, bool *done = nullptr)
{
    MemReq req;
    req.op = op;
    req.addr = a;
    req.size = 8;
    req.value = v;
    sys.chips[node]->dl1(cpu).access(req, [done](const MemRsp &) {
        if (done)
            *done = true;
    });
}

} // namespace piranha

#endif // PIRANHA_TESTS_TEST_SYSTEM_H
