/**
 * @file
 * Shared test fixture: builds an N-node Piranha system and drives CPU
 * ports directly (no CPU timing model), with synchronous helpers for
 * protocol tests and asynchronous agents for the random tester.
 */

#ifndef PIRANHA_TESTS_TEST_SYSTEM_H
#define PIRANHA_TESTS_TEST_SYSTEM_H

#include <memory>
#include <vector>

#include "sim/event_queue.h"
#include "system/chip.h"

namespace piranha {

class TestSystem
{
  public:
    explicit TestSystem(unsigned nodes = 1, unsigned cpus = 8,
                        ChipParams params = ChipParams{})
    {
        amap.numNodes = nodes;
        if (nodes > 1)
            net = std::make_unique<Network>(eq, "net");
        params.cpus = cpus;
        for (unsigned n = 0; n < nodes; ++n) {
            chips.push_back(std::make_unique<PiranhaChip>(
                eq, strFormat("node%u", n), static_cast<NodeId>(n),
                amap, params, net.get()));
        }
        if (net) {
            for (unsigned n = 0; n < nodes; ++n) {
                PiranhaChip *c = chips[n].get();
                net->addNode(static_cast<NodeId>(n),
                             [c](const NetPacket &p) {
                                 c->deliverNet(p);
                             });
            }
            Network::buildFullyConnected(*net);
        }
    }

    /** Synchronous load: run the system until the access completes. */
    std::uint64_t
    load(unsigned node, unsigned cpu, Addr addr, unsigned size = 8,
         FillSource *src_out = nullptr)
    {
        bool done = false;
        std::uint64_t value = 0;
        MemReq req;
        req.op = MemOp::Load;
        req.addr = addr;
        req.size = static_cast<std::uint8_t>(size);
        chips[node]->dl1(cpu).access(req, [&](const MemRsp &r) {
            value = r.value;
            if (src_out)
                *src_out = r.source;
            done = true;
        });
        waitFor(done);
        return value;
    }

    /** Synchronous ifetch. */
    std::uint64_t
    ifetch(unsigned node, unsigned cpu, Addr addr,
           FillSource *src_out = nullptr)
    {
        bool done = false;
        std::uint64_t value = 0;
        MemReq req;
        req.op = MemOp::Ifetch;
        req.addr = addr;
        req.size = 4;
        chips[node]->il1(cpu).access(req, [&](const MemRsp &r) {
            value = r.value;
            if (src_out)
                *src_out = r.source;
            done = true;
        });
        waitFor(done);
        return value;
    }

    /** Synchronous store (completes into the store buffer). */
    void
    store(unsigned node, unsigned cpu, Addr addr, std::uint64_t value,
          unsigned size = 8)
    {
        bool done = false;
        MemReq req;
        req.op = MemOp::Store;
        req.addr = addr;
        req.size = static_cast<std::uint8_t>(size);
        req.value = value;
        chips[node]->dl1(cpu).access(req,
                                     [&](const MemRsp &) { done = true; });
        waitFor(done);
    }

    /** Synchronous write-hint (wh64). */
    void
    wh64(unsigned node, unsigned cpu, Addr addr)
    {
        bool done = false;
        MemReq req;
        req.op = MemOp::Wh64;
        req.addr = addr;
        chips[node]->dl1(cpu).access(req,
                                     [&](const MemRsp &) { done = true; });
        waitFor(done);
    }

    /** Drain every pending event (store buffers, protocol, network). */
    void settle() { eq.run(); }

    void
    waitFor(bool &flag)
    {
        while (!flag) {
            if (!eq.step())
                panic("test system deadlock: event queue drained "
                      "while waiting");
        }
    }

    EventQueue eq;
    AddressMap amap;
    std::unique_ptr<Network> net;
    std::vector<std::unique_ptr<PiranhaChip>> chips;
};

/** An address homed at @p node (page-interleaved homes); @p line
 *  selects distinct lines within the chosen page. */
inline Addr
homedAt(const TestSystem &sys, unsigned node, unsigned line = 0)
{
    Addr a = 0x5000000 + line * lineBytes;
    while (sys.amap.home(a) != node)
        a += 1ULL << sys.amap.pageShift;
    return a;
}

/** Issue an access without waiting for completion. */
inline void
fire(TestSystem &sys, unsigned node, unsigned cpu, MemOp op, Addr a,
     std::uint64_t v, bool *done = nullptr)
{
    MemReq req;
    req.op = op;
    req.addr = a;
    req.size = 8;
    req.value = v;
    sys.chips[node]->dl1(cpu).access(req, [done](const MemRsp &) {
        if (done)
            *done = true;
    });
}

} // namespace piranha

#endif // PIRANHA_TESTS_TEST_SYSTEM_H
