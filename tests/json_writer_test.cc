/**
 * @file
 * Tests for the JSON document model (stats/json.*) and the StatGroup
 * JSON writer (stats/json_writer.*): nested groups, ratios with zero
 * denominators, histogram buckets/percentiles — all validated by
 * parsing the serialized output back and comparing values.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "stats/json.h"
#include "stats/json_writer.h"
#include "stats/stats.h"

namespace piranha {
namespace {

TEST(Json, BuildAndDumpScalars)
{
    JsonValue obj = JsonValue::object();
    obj.set("str", "hello");
    obj.set("num", 2.5);
    obj.set("int", 42);
    obj.set("yes", true);
    obj.set("nothing", JsonValue());
    std::string s = obj.dump(0);
    EXPECT_EQ(s, "{\"str\":\"hello\",\"num\":2.5,\"int\":42,"
                 "\"yes\":true,\"nothing\":null}");
}

TEST(Json, EscapesStrings)
{
    JsonValue v(std::string("a\"b\\c\n\tz"));
    EXPECT_EQ(v.dump(0), "\"a\\\"b\\\\c\\n\\tz\"");
    JsonValue parsed = parseJson(v.dump(0));
    EXPECT_EQ(parsed.asString(), "a\"b\\c\n\tz");
}

TEST(Json, ParsesDocument)
{
    JsonValue v = parseJson(R"({
        "name": "x",
        "vals": [1, 2.5, -3e2],
        "nested": {"ok": true, "null": null},
        "esc": "tab\there A"
    })");
    EXPECT_EQ(v.at("name").asString(), "x");
    EXPECT_EQ(v.at("vals").size(), 3u);
    EXPECT_DOUBLE_EQ(v.at("vals").at(2).asNumber(), -300.0);
    EXPECT_TRUE(v.at("nested").at("ok").asBool());
    EXPECT_TRUE(v.at("nested").at("null").isNull());
    EXPECT_EQ(v.at("esc").asString(), "tab\there A");
}

TEST(Json, RejectsMalformedInput)
{
    EXPECT_THROW(parseJson("{"), JsonParseError);
    EXPECT_THROW(parseJson("[1,]"), JsonParseError);
    EXPECT_THROW(parseJson("{\"a\" 1}"), JsonParseError);
    EXPECT_THROW(parseJson("tru"), JsonParseError);
    EXPECT_THROW(parseJson("{} extra"), JsonParseError);
    EXPECT_THROW(parseJson("\"unterminated"), JsonParseError);
}

TEST(Json, NumbersRoundTripBitExactly)
{
    for (double v : {0.0, 1.0 / 3.0, -2.5e-17, 6.02214076e23,
                     123456789.123456789, -0.1}) {
        JsonValue parsed = parseJson(JsonValue(v).dump(0));
        EXPECT_EQ(parsed.asNumber(), v) << JsonValue(v).dump(0);
    }
}

TEST(Json, NonFiniteSerializesAsNull)
{
    EXPECT_EQ(JsonValue(std::nan("")).dump(0), "null");
    EXPECT_EQ(JsonValue(INFINITY).dump(0), "null");
}

TEST(Json, ObjectKeysKeepInsertionOrder)
{
    JsonValue obj = JsonValue::object();
    obj.set("zebra", 1);
    obj.set("alpha", 2);
    obj.set("zebra", 3); // replaces, does not reorder
    ASSERT_EQ(obj.keys().size(), 2u);
    EXPECT_EQ(obj.keys()[0], "zebra");
    EXPECT_DOUBLE_EQ(obj.at("zebra").asNumber(), 3.0);
}

/** Serialize a StatGroup and parse the result back. */
JsonValue
roundTrip(const StatGroup &g)
{
    std::ostringstream os;
    writeStatsJson(os, g);
    return parseJson(os.str());
}

TEST(JsonWriter, NestedGroups)
{
    Scalar hits, misses;
    hits += 90;
    misses += 10;
    StatGroup root("system");
    StatGroup chip("chip0");
    StatGroup l2("l2");
    l2.addScalar("hits", &hits, "L2 hits");
    l2.addScalar("misses", &misses);
    chip.addChild(&l2);
    root.addChild(&chip);

    JsonValue v = roundTrip(root);
    EXPECT_EQ(v.at("name").asString(), "system");
    const JsonValue &jchip = v.at("children").at(0);
    EXPECT_EQ(jchip.at("name").asString(), "chip0");
    const JsonValue &jl2 = jchip.at("children").at(0);
    EXPECT_DOUBLE_EQ(jl2.at("scalars").at("hits").asNumber(), 90.0);
    EXPECT_DOUBLE_EQ(jl2.at("scalars").at("misses").asNumber(), 10.0);
    // Empty sections are omitted, not emitted as empty objects.
    EXPECT_EQ(v.find("scalars"), nullptr);
    EXPECT_EQ(jl2.find("children"), nullptr);
}

TEST(JsonWriter, RatioWithZeroDenominator)
{
    Scalar num, den;
    num += 5;
    StatGroup g("g");
    g.addRatio("rate", Ratio(&num, &den));
    g.addRatio("dangling", Ratio(nullptr, nullptr));

    JsonValue v = roundTrip(g);
    // Zero denominator reads as 0.0 (the Ratio contract), which must
    // serialize as a number, not null/Inf.
    EXPECT_DOUBLE_EQ(v.at("ratios").at("rate").asNumber(), 0.0);
    EXPECT_DOUBLE_EQ(v.at("ratios").at("dangling").asNumber(), 0.0);

    den += 2;
    JsonValue v2 = roundTrip(g);
    EXPECT_DOUBLE_EQ(v2.at("ratios").at("rate").asNumber(), 2.5);
}

TEST(JsonWriter, HistogramRoundTrip)
{
    Histogram h(10.0, 4);
    for (int i = 0; i < 100; ++i)
        h.sample(i % 40);
    StatGroup g("g");
    g.addHistogram("lat", &h, "latency");

    JsonValue v = roundTrip(g);
    const JsonValue &jh = v.at("histograms").at("lat");
    EXPECT_DOUBLE_EQ(jh.at("samples").asNumber(),
                     static_cast<double>(h.samples()));
    EXPECT_DOUBLE_EQ(jh.at("mean").asNumber(), h.mean());
    EXPECT_DOUBLE_EQ(jh.at("min").asNumber(), h.min());
    EXPECT_DOUBLE_EQ(jh.at("max").asNumber(), h.max());
    EXPECT_DOUBLE_EQ(jh.at("bucket_width").asNumber(), h.bucketWidth());
    ASSERT_EQ(jh.at("buckets").size(), h.buckets().size());
    for (size_t i = 0; i < h.buckets().size(); ++i)
        EXPECT_DOUBLE_EQ(jh.at("buckets").at(i).asNumber(),
                         static_cast<double>(h.buckets()[i]));
    EXPECT_DOUBLE_EQ(jh.at("p50").asNumber(), h.percentile(0.5));
    EXPECT_DOUBLE_EQ(jh.at("p90").asNumber(), h.percentile(0.9));
    EXPECT_DOUBLE_EQ(jh.at("p99").asNumber(), h.percentile(0.99));
}

TEST(JsonWriter, ValuesAreLiveSnapshots)
{
    Scalar s;
    StatGroup g("g");
    g.addScalar("x", &s);
    s += 1;
    JsonValue before = statGroupToJson(g);
    s += 1;
    JsonValue after = statGroupToJson(g);
    EXPECT_DOUBLE_EQ(before.at("scalars").at("x").asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(after.at("scalars").at("x").asNumber(), 2.0);
}

} // namespace
} // namespace piranha
