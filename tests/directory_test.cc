/**
 * @file
 * Tests for the 44-bit directory entry codec: limited-pointer and
 * coarse-vector representations, the switch at >4 remote sharers, and
 * pack/unpack round trips (paper §2.5.2).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "mem/directory.h"
#include "sim/rng.h"

namespace piranha {
namespace {

TEST(DirEntry, StartsUncached)
{
    DirEntry e(64);
    EXPECT_TRUE(e.empty());
    EXPECT_EQ(e.state(), DirState::Uncached);
    EXPECT_EQ(e.sharerCount(), 0u);
    EXPECT_FALSE(e.mayBeSharer(3));
}

TEST(DirEntry, LimitedPointerUpToFourSharers)
{
    DirEntry e(1024);
    e.addSharer(10);
    e.addSharer(999);
    e.addSharer(0);
    e.addSharer(512);
    EXPECT_EQ(e.state(), DirState::SharedPtr);
    EXPECT_EQ(e.sharerCount(), 4u);
    EXPECT_TRUE(e.mayBeSharer(999));
    EXPECT_FALSE(e.mayBeSharer(11));
}

TEST(DirEntry, SwitchesToCoarseVectorPastFour)
{
    // "Given a 1K node system, we switch to coarse vector
    //  representation past 4 remote sharing nodes."
    DirEntry e(1024);
    for (NodeId n : {5, 100, 200, 300})
        e.addSharer(n);
    EXPECT_EQ(e.state(), DirState::SharedPtr);
    e.addSharer(400);
    EXPECT_EQ(e.state(), DirState::SharedCv);
    for (NodeId n : {5, 100, 200, 300, 400})
        EXPECT_TRUE(e.mayBeSharer(n));
}

TEST(DirEntry, CoarseVectorIsConservative)
{
    DirEntry e(1024);
    for (NodeId n : {0, 100, 200, 300, 400})
        e.addSharer(n);
    ASSERT_EQ(e.state(), DirState::SharedCv);
    // Node in the same group as node 0 may be reported as sharer
    // (over-invalidation is allowed; missing a sharer is not).
    unsigned gs = DirEntry::groupSize(1024);
    EXPECT_TRUE(e.mayBeSharer(static_cast<NodeId>(gs - 1)));
    // All true sharers must be covered by sharerList().
    auto list = e.sharerList();
    for (NodeId n : {0, 100, 200, 300, 400}) {
        EXPECT_NE(std::find(list.begin(), list.end(), n), list.end())
            << "missing true sharer " << n;
    }
}

TEST(DirEntry, ExclusiveOwner)
{
    DirEntry e(16);
    e.setExclusive(7);
    EXPECT_EQ(e.state(), DirState::Exclusive);
    EXPECT_EQ(e.owner(), 7);
    EXPECT_TRUE(e.mayBeSharer(7));
    EXPECT_FALSE(e.mayBeSharer(6));
    // Read by another node demotes owner to sharer alongside it.
    e.addSharer(3);
    EXPECT_EQ(e.state(), DirState::SharedPtr);
    EXPECT_TRUE(e.mayBeSharer(7));
    EXPECT_TRUE(e.mayBeSharer(3));
}

TEST(DirEntry, RemoveSharerAndCollapse)
{
    DirEntry e(16);
    e.addSharer(1);
    e.addSharer(2);
    e.removeSharer(1);
    EXPECT_FALSE(e.mayBeSharer(1));
    EXPECT_TRUE(e.mayBeSharer(2));
    e.removeSharer(2);
    EXPECT_TRUE(e.empty());
}

TEST(DirEntry, RemoveOwnerClearsExclusive)
{
    DirEntry e(16);
    e.setExclusive(5);
    e.removeSharer(5);
    EXPECT_TRUE(e.empty());
    // Removing a non-owner does nothing.
    e.setExclusive(5);
    e.removeSharer(6);
    EXPECT_EQ(e.owner(), 5);
}

TEST(DirEntry, PackFitsIn44Bits)
{
    Pcg32 rng(77);
    for (int i = 0; i < 2000; ++i) {
        DirEntry e(1024);
        unsigned n = 1 + rng.below(10);
        for (unsigned j = 0; j < n; ++j)
            e.addSharer(static_cast<NodeId>(rng.below(1024)));
        EXPECT_EQ(e.pack() >> DirEntry::entryBits, 0u);
    }
}

TEST(DirEntry, PackUnpackRoundTripPointer)
{
    Pcg32 rng(78);
    for (int i = 0; i < 2000; ++i) {
        DirEntry e(1024);
        unsigned n = 1 + rng.below(4);
        for (unsigned j = 0; j < n; ++j)
            e.addSharer(static_cast<NodeId>(rng.below(1024)));
        DirEntry back = DirEntry::unpack(e.pack(), 1024);
        EXPECT_TRUE(back == e);
    }
}

TEST(DirEntry, PackUnpackRoundTripCoarseAndExclusive)
{
    Pcg32 rng(79);
    for (int i = 0; i < 2000; ++i) {
        DirEntry e(1024);
        unsigned n = 5 + rng.below(30);
        for (unsigned j = 0; j < n; ++j)
            e.addSharer(static_cast<NodeId>(rng.below(1024)));
        EXPECT_EQ(e.state(), DirState::SharedCv);
        EXPECT_TRUE(DirEntry::unpack(e.pack(), 1024) == e);

        DirEntry x(1024);
        x.setExclusive(static_cast<NodeId>(rng.below(1024)));
        EXPECT_TRUE(DirEntry::unpack(x.pack(), 1024) == x);
    }
    DirEntry empty(1024);
    EXPECT_TRUE(DirEntry::unpack(empty.pack(), 1024) == empty);
}

TEST(DirEntry, PropertyNeverMissesTrueSharer)
{
    // Whatever sequence of adds happens, every added-and-not-removed
    // node must be reported by mayBeSharer (the protocol relies on
    // the directory being conservative).
    Pcg32 rng(80);
    for (int trial = 0; trial < 300; ++trial) {
        unsigned nodes = 8u << rng.below(8); // 8..1024
        DirEntry e(nodes);
        std::vector<NodeId> added;
        unsigned ops = 1 + rng.below(40);
        for (unsigned i = 0; i < ops; ++i) {
            NodeId n = static_cast<NodeId>(rng.below(nodes));
            e.addSharer(n);
            added.push_back(n);
        }
        for (NodeId n : added)
            EXPECT_TRUE(e.mayBeSharer(n))
                << "nodes=" << nodes << " n=" << n;
    }
}

TEST(DirEntry, GroupSizeMatchesPaperScale)
{
    // 1K nodes / 42 bits -> 25 nodes per coarse-vector bit.
    EXPECT_EQ(DirEntry::groupSize(1024), 25u);
    EXPECT_EQ(DirEntry::groupSize(42), 1u);
    EXPECT_EQ(DirEntry::groupSize(2), 1u);
}

} // namespace
} // namespace piranha
