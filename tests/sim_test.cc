/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, determinism,
 * clock-domain conversion and the PCG32 generator.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/sim_object.h"
#include "sim/types.h"

namespace piranha {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(100, [&, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, EventsScheduledDuringExecutionRun)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] {
        ++fired;
        eq.scheduleIn(5, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.curTick(), 10u);
}

TEST(EventQueue, RunWithLimitStopsAndResumes)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(1000, [&] { ++fired; });
    EXPECT_FALSE(eq.run(500));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.curTick(), 500u);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ZeroDelaySelfScheduleMakesProgress)
{
    EventQueue eq;
    int count = 0;
    EventFn fn = [&]() {
        if (++count < 100)
            eq.scheduleIn(0, [&] {
                if (++count < 100)
                    eq.scheduleIn(1, [] {});
            });
    };
    eq.schedule(0, fn);
    eq.run();
    EXPECT_GE(count, 2);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, [] {}), "past");
}

TEST(Clock, ConvertsCyclesToTicks)
{
    Clock c500(500.0);   // 2 ns period
    Clock c1000(1000.0); // 1 ns period
    Clock c1250(1250.0); // 0.8 ns period
    EXPECT_EQ(c500.cycles(1), 2000u);
    EXPECT_EQ(c1000.cycles(1), 1000u);
    EXPECT_EQ(c1250.cycles(1), 800u);
    EXPECT_EQ(c500.cycles(1000), 2000000u);
}

TEST(Clock, NoDriftOverManyCycles)
{
    Clock c(333.0); // awkward period
    // Converting from total cycle count must not accumulate error:
    // 333 MHz -> 1e6/333 ps; one million cycles ~ 3.003003e9 ps.
    Tick t = c.cycles(1000000);
    EXPECT_NEAR(static_cast<double>(t), 1e12 / 333.0, 1.0);
}

TEST(Types, LineHelpers)
{
    EXPECT_EQ(lineAlign(0x12345), 0x12340u);
    EXPECT_EQ(lineNum(0x12345), 0x12345u >> 6);
    EXPECT_EQ(nsToTicks(60), 60000u);
}

TEST(Pcg32, DeterministicForSameSeed)
{
    Pcg32 a(42, 7), b(42, 7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, DifferentSeedsDiffer)
{
    Pcg32 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Pcg32, BelowIsInRange)
{
    Pcg32 r(123);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
    EXPECT_EQ(r.below(0), 0u);
    EXPECT_EQ(r.below(1), 0u);
}

TEST(Pcg32, UniformCoversRange)
{
    Pcg32 r(9);
    double lo = 1.0, hi = 0.0, sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double u = r.uniform();
        lo = std::min(lo, u);
        hi = std::max(hi, u);
        sum += u;
    }
    EXPECT_LT(lo, 0.001);
    EXPECT_GT(hi, 0.999);
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(SimObject, NameAndQueueAccess)
{
    EventQueue eq;
    class Dummy : public SimObject
    {
      public:
        using SimObject::SimObject;
    };
    Dummy d(eq, "node0.cpu1.dl1");
    EXPECT_EQ(d.name(), "node0.cpu1.dl1");
    EXPECT_EQ(&d.eventQueue(), &eq);
}

} // namespace
} // namespace piranha
