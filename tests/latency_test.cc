/**
 * @file
 * End-to-end latency calibration against Table 1 of the paper.
 *
 * Latencies are emergent (ICS pipeline + L2 lookup + RDRAM timing +
 * network hops), so these tests pin them to the published values
 * within a tolerance: P8 L2 hit 16 ns / L2 fwd 24 ns / local memory
 * 80 ns / remote memory 120 ns / remote dirty 180 ns; OOO L2 hit
 * 12 ns.
 */

#include <gtest/gtest.h>

#include "system/config.h"
#include "test_system.h"

namespace piranha {
namespace {

/** Measure one dL1 access latency in ns on a fresh system. */
double
measure(TestSystem &sys, unsigned node, unsigned cpu, Addr addr)
{
    Tick start = sys.eq.curTick();
    bool done = false;
    Tick end = 0;
    MemReq req;
    req.op = MemOp::Load;
    req.addr = addr;
    req.size = 8;
    sys.chips[node]->dl1(cpu).access(req, [&](const MemRsp &) {
        done = true;
        end = sys.eq.curTick();
    });
    sys.waitFor(done);
    return static_cast<double>(end - start) /
           static_cast<double>(ticksPerNs);
}

constexpr Addr kA = 0x5000000;

TEST(Latency, P8LocalMemoryAbout80ns)
{
    TestSystem sys(1, 8, configP8().chip);
    double ns = measure(sys, 0, 0, kA);
    EXPECT_NEAR(ns, 80.0, 25.0) << "measured " << ns;
}

TEST(Latency, P8L2HitAbout16ns)
{
    TestSystem sys(1, 8, configP8().chip);
    // Load on cpu0, evict it to the L2 (victim cache), reload.
    sys.load(0, 0, kA);
    L1Params l1 = configP8().chip.l1d;
    Addr stride =
        static_cast<Addr>(l1.sizeBytes / (l1.assoc * lineBytes)) *
        lineBytes * 8;
    sys.load(0, 0, kA + stride);
    sys.load(0, 0, kA + 2 * stride);
    sys.settle();
    ASSERT_EQ(sys.chips[0]->dl1(0).lineState(kA), L1State::I);
    double ns = measure(sys, 0, 0, kA);
    EXPECT_NEAR(ns, 16.0, 6.0) << "measured " << ns;
}

TEST(Latency, P8L2FwdAbout24ns)
{
    TestSystem sys(1, 8, configP8().chip);
    sys.store(0, 1, kA, 1); // cpu1 owns the line (M)
    sys.settle();
    double ns = measure(sys, 0, 0, kA);
    EXPECT_NEAR(ns, 24.0, 8.0) << "measured " << ns;
}

TEST(Latency, P8RemoteMemoryAbout120ns)
{
    ChipParams cp = configP8().chip;
    TestSystem sys(2, 2, cp);
    // An address homed at node 0, accessed from node 1.
    Addr a = kA;
    while (sys.amap.home(a) != 0)
        a += 1ULL << sys.amap.pageShift;
    double ns = measure(sys, 1, 0, a);
    EXPECT_NEAR(ns, 120.0, 40.0) << "measured " << ns;
}

TEST(Latency, P8RemoteDirtyAbout180ns)
{
    ChipParams cp = configP8().chip;
    TestSystem sys(3, 2, cp);
    Addr a = kA;
    while (sys.amap.home(a) != 0)
        a += 1ULL << sys.amap.pageShift;
    sys.store(1, 0, a, 7); // dirty at node 1
    sys.settle();
    double ns = measure(sys, 2, 0, a); // 3-hop from node 2
    EXPECT_NEAR(ns, 180.0, 60.0) << "measured " << ns;
}

TEST(Latency, OooL2HitAbout12ns)
{
    TestSystem sys(1, 1, configOOO().chip);
    sys.load(0, 0, kA);
    L1Params l1 = configOOO().chip.l1d;
    Addr stride =
        static_cast<Addr>(l1.sizeBytes / (l1.assoc * lineBytes)) *
        lineBytes * 8;
    sys.load(0, 0, kA + stride);
    sys.load(0, 0, kA + 2 * stride);
    sys.settle();
    double ns = measure(sys, 0, 0, kA);
    EXPECT_NEAR(ns, 12.0, 5.0) << "measured " << ns;
}

TEST(Latency, L1HitSingleCycle)
{
    TestSystem sys(1, 8, configP8().chip);
    sys.load(0, 0, kA);
    sys.settle();
    double ns = measure(sys, 0, 0, kA);
    // Single-cycle L1 at 500 MHz = 2 ns.
    EXPECT_NEAR(ns, 2.0, 1.0);
}

} // namespace
} // namespace piranha
