/**
 * @file
 * Unit + property tests for the 19-in-22 DC-balanced link code and the
 * packet CRC (paper §2.6.1).
 */

#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "noc/link_codec.h"
#include "sim/rng.h"

namespace piranha {
namespace {

TEST(LinkCodec, EveryWordIsDcBalanced)
{
    Pcg32 rng(1);
    for (int i = 0; i < 20000; ++i) {
        auto data = static_cast<std::uint16_t>(rng.next());
        auto aux = static_cast<std::uint8_t>(rng.next() & 3);
        bool inv = rng.chance(0.5);
        std::uint32_t w = LinkCodec::encode(data, aux, inv);
        EXPECT_EQ(std::popcount(w), 11) << "word " << std::hex << w;
        EXPECT_EQ(w >> 22, 0u) << "uses only 22 wires";
    }
}

TEST(LinkCodec, RoundTripAllAuxAndInversion)
{
    Pcg32 rng(2);
    for (int i = 0; i < 20000; ++i) {
        auto data = static_cast<std::uint16_t>(rng.next());
        auto aux = static_cast<std::uint8_t>(rng.next() & 3);
        bool inv = rng.chance(0.5);
        auto decoded = LinkCodec::decode(LinkCodec::encode(data, aux, inv));
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(decoded->data, data);
        EXPECT_EQ(decoded->aux, aux);
        EXPECT_EQ(decoded->inverted, inv);
    }
}

TEST(LinkCodec, ExhaustiveRoundTripDataSweep)
{
    // All 2^16 data values with both aux and inversion-bit corners.
    for (unsigned d = 0; d < 65536; ++d) {
        auto data = static_cast<std::uint16_t>(d);
        auto dec0 = LinkCodec::decode(LinkCodec::encode(data, 0, false));
        auto dec1 = LinkCodec::decode(LinkCodec::encode(data, 3, true));
        ASSERT_TRUE(dec0 && dec1);
        EXPECT_EQ(dec0->data, data);
        EXPECT_EQ(dec1->data, data);
    }
}

TEST(LinkCodec, NoTwoCodesAreComplementary)
{
    // The paper: "By design, the set of codes used to represent 18
    // bits has no two elements that are complementary", which is what
    // makes the inversion bit recoverable.
    Pcg32 rng(3);
    for (int i = 0; i < 5000; ++i) {
        auto data = static_cast<std::uint16_t>(rng.next());
        auto aux = static_cast<std::uint8_t>(rng.next() & 3);
        std::uint32_t w = LinkCodec::encode(data, aux, false);
        std::uint32_t comp = ~w & 0x3fffffu;
        auto dec = LinkCodec::decode(comp);
        // The complement must decode as "inverted" of the same payload,
        // never as a different non-inverted payload.
        ASSERT_TRUE(dec.has_value());
        EXPECT_TRUE(dec->inverted);
        EXPECT_EQ(dec->data, data);
        EXPECT_EQ(dec->aux, aux);
    }
}

TEST(LinkCodec, DistinctPayloadsGetDistinctWords)
{
    std::set<std::uint32_t> seen;
    Pcg32 rng(4);
    for (int i = 0; i < 4096; ++i) {
        auto data = static_cast<std::uint16_t>(rng.next());
        auto aux = static_cast<std::uint8_t>(rng.next() & 3);
        seen.insert(LinkCodec::encode(data, aux, false));
    }
    // With random payloads collisions would indicate a broken ranking.
    EXPECT_GT(seen.size(), 4000u);
}

TEST(LinkCodec, RejectsUnbalancedWords)
{
    EXPECT_FALSE(LinkCodec::decode(0x000000).has_value());
    EXPECT_FALSE(LinkCodec::decode(0x3fffff).has_value());
    EXPECT_FALSE(LinkCodec::decode(0x000001).has_value());
}

TEST(LinkCodec, SingleWireErrorIsDetected)
{
    // Flipping one wire always unbalances a balanced word.
    Pcg32 rng(5);
    for (int i = 0; i < 2000; ++i) {
        std::uint32_t w = LinkCodec::encode(
            static_cast<std::uint16_t>(rng.next()),
            static_cast<std::uint8_t>(rng.next() & 3), rng.chance(0.5));
        unsigned wire = rng.below(22);
        EXPECT_FALSE(LinkCodec::decode(w ^ (1u << wire)).has_value());
    }
}

TEST(LinkCodec, TimeDomainDcBalanceWithRandomInversion)
{
    // With the random 19th bit, each individual wire should be '1'
    // about half the time even for a constant payload (statistical
    // DC balance in the time domain, enabling transformer coupling).
    Pcg32 rng(6);
    std::array<int, 22> ones{};
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        std::uint32_t w = LinkCodec::encode(0xabcd, 1, rng.chance(0.5));
        for (int b = 0; b < 22; ++b)
            ones[static_cast<size_t>(b)] += (w >> b) & 1;
    }
    for (int b = 0; b < 22; ++b) {
        double frac = double(ones[static_cast<size_t>(b)]) / n;
        EXPECT_NEAR(frac, 0.5, 0.03) << "wire " << b;
    }
}

TEST(Crc16, KnownVectorAndSensitivity)
{
    const std::uint8_t msg[] = {'1', '2', '3', '4', '5',
                                '6', '7', '8', '9'};
    // CRC-16/CCITT-FALSE check value for "123456789".
    EXPECT_EQ(crc16(msg, sizeof(msg)), 0x29B1);

    std::uint8_t corrupted[sizeof(msg)];
    std::copy(std::begin(msg), std::end(msg), corrupted);
    corrupted[4] ^= 0x01;
    EXPECT_NE(crc16(corrupted, sizeof(corrupted)), 0x29B1);
}

TEST(Crc16, EmptyAndSeedBehaviour)
{
    EXPECT_EQ(crc16(nullptr, 0), 0xffff);
    const std::uint8_t b = 0;
    EXPECT_NE(crc16(&b, 1), crc16(&b, 1, 0x0000));
}

} // namespace
} // namespace piranha
