/**
 * @file
 * Multi-chip (NUMA) integration tests: the microcoded home/remote
 * engines, the inter-node directory protocol, CMI invalidations,
 * write-back races and 3-hop transactions (paper §2.5, §2.6).
 */

#include <gtest/gtest.h>

#include "test_system.h"

namespace piranha {
namespace {

TEST(MultiChip, RemoteLoadFromHomeMemory)
{
    TestSystem sys(2, 2);
    Addr a = homedAt(sys, 0);
    sys.chips[0]->memory().poke64(a, 0xabcdef);
    FillSource src;
    EXPECT_EQ(sys.load(1, 0, a, 8, &src), 0xabcdefu);
    EXPECT_EQ(src, FillSource::MemRemote);
    // Clean-exclusive optimization: sole sharer gets an exclusive
    // copy.
    sys.settle();
    EXPECT_EQ(sys.chips[1]->dl1(0).lineState(a), L1State::E);
}

TEST(MultiChip, RemoteStoreVisibleAtHome)
{
    TestSystem sys(2, 2);
    Addr a = homedAt(sys, 0);
    sys.store(1, 0, a, 0x77);
    sys.settle();
    FillSource src;
    EXPECT_EQ(sys.load(0, 0, a, 8, &src), 0x77u);
    // The home's read was serviced by the remote dirty owner (3-hop
    // transaction with reply forwarding).
    EXPECT_EQ(src, FillSource::RemoteDirty);
}

TEST(MultiChip, ThirdNodeReadsRemoteDirty)
{
    TestSystem sys(3, 1);
    Addr a = homedAt(sys, 0);
    sys.store(1, 0, a, 0x1234);
    sys.settle();
    FillSource src;
    EXPECT_EQ(sys.load(2, 0, a, 8, &src), 0x1234u);
    EXPECT_EQ(src, FillSource::RemoteDirty);
    sys.settle();
    // ShareWb made home memory current.
    EXPECT_EQ(sys.chips[0]->memory().peek64(a), 0x1234u);
}

TEST(MultiChip, WriteInvalidatesRemoteSharersViaCmi)
{
    TestSystem sys(4, 1);
    Addr a = homedAt(sys, 0);
    sys.chips[0]->memory().poke64(a, 9);
    for (unsigned n = 0; n < 4; ++n)
        EXPECT_EQ(sys.load(n, 0, a), 9u);
    sys.settle();
    sys.store(3, 0, a, 10);
    sys.settle();
    for (unsigned n = 0; n < 3; ++n)
        EXPECT_EQ(sys.load(n, 0, a), 10u) << "node " << n;
}

TEST(MultiChip, UpgradeFromRemoteSharer)
{
    TestSystem sys(2, 1);
    Addr a = homedAt(sys, 0);
    sys.chips[0]->memory().poke64(a, 1);
    EXPECT_EQ(sys.load(0, 0, a), 1u);
    EXPECT_EQ(sys.load(1, 0, a), 1u);
    sys.settle();
    // Node 1 upgrades its shared copy.
    sys.store(1, 0, a, 2);
    sys.settle();
    EXPECT_EQ(sys.load(0, 0, a), 2u);
}

TEST(MultiChip, OwnershipMigratesAcrossNodes)
{
    TestSystem sys(3, 1);
    Addr a = homedAt(sys, 0);
    for (std::uint64_t i = 0; i < 12; ++i) {
        unsigned writer = i % 3;
        sys.store(writer, 0, a, 100 + i);
        sys.settle();
        unsigned reader = (writer + 1) % 3;
        EXPECT_EQ(sys.load(reader, 0, a), 100 + i) << "iter " << i;
        sys.settle();
    }
}

TEST(MultiChip, NodeEvictionWritesBackToHome)
{
    // Force node 1's caches to evict dirty lines homed at node 0:
    // L1 (2-way) -> L2 (victim) -> L2 eviction -> Wb to home.
    TestSystem sys(2, 1);
    L1Params l1{};
    std::size_t l1_sets = l1.sizeBytes / (l1.assoc * lineBytes);
    L2Params l2{};
    std::size_t l2_sets = l2.bankBytes / (l2.assoc * lineBytes);
    // Lines in the same L1 set, same bank, same L2 set, all homed at
    // node 0 (page-interleave aware: keep within one page per line by
    // choosing stride that is a multiple of numNodes pages).
    Addr stride = static_cast<Addr>(
        std::max(l1_sets, l2_sets) * 8 * lineBytes);
    stride *= 2; // keep home == node 0 for every line (2 nodes)
    std::vector<Addr> addrs;
    for (unsigned i = 0; i < l1.assoc + l2.assoc + 4; ++i) {
        Addr a = 0x8000000 + i * stride;
        if (sys.amap.home(a) != 0)
            a += 1ULL << sys.amap.pageShift;
        ASSERT_EQ(sys.amap.home(a), 0);
        addrs.push_back(a);
        sys.store(1, 0, a, 0x5000 + i);
        sys.settle();
    }
    sys.settle();
    // Everything must still be readable at the home with the stored
    // values, wherever each line ended up.
    for (unsigned i = 0; i < addrs.size(); ++i)
        EXPECT_EQ(sys.load(0, 0, addrs[i]), 0x5000u + i) << i;
}

TEST(MultiChip, HomeAndRemoteMixOnSameLine)
{
    TestSystem sys(2, 2);
    Addr a = homedAt(sys, 1); // homed at node 1
    sys.store(0, 1, a, 0xaa); // remote store
    sys.settle();
    sys.store(1, 0, a, 0xbb); // home store (FwdX to node 0)
    sys.settle();
    EXPECT_EQ(sys.load(0, 0, a), 0xbbu);
    sys.settle();
    sys.store(0, 0, a, 0xcc);
    sys.settle();
    EXPECT_EQ(sys.load(1, 1, a), 0xccu);
}

TEST(MultiChip, DistinctSlotsOfALineFromDifferentNodes)
{
    TestSystem sys(4, 1);
    Addr a = homedAt(sys, 2);
    for (unsigned n = 0; n < 4; ++n) {
        sys.store(n, 0, a + n * 8, 0x9900 + n);
        sys.settle();
    }
    for (unsigned n = 0; n < 4; ++n)
        EXPECT_EQ(sys.load((n + 1) % 4, 0, a + n * 8), 0x9900u + n);
}

TEST(MultiChip, EngineMicrocodeWithinBudget)
{
    // "The current protocol uses about 500 microcode instructions
    //  per engine" — ours must at least fit the 1024-word memory.
    TestSystem sys(2, 1);
    EXPECT_LE(sys.chips[0]->homeEngine().program().mem.size(), 1024u);
    EXPECT_LE(sys.chips[0]->remoteEngine().program().mem.size(), 1024u);
    EXPECT_GT(sys.chips[0]->homeEngine().program().instructionCount(),
              20u);
}

TEST(MultiChip, PacketEncodings)
{
    NetPacket p;
    p.type = NetMsgType::ReqS;
    EXPECT_EQ(p.icCycles(), 2u); // short packet
    p.hasData = true;
    EXPECT_EQ(p.icCycles(), 10u); // long packet
    EXPECT_EQ(netLaneFor(NetMsgType::ReqS), VirtualLane::L);
    EXPECT_EQ(netLaneFor(NetMsgType::Wb), VirtualLane::H);
    EXPECT_EQ(netLaneFor(NetMsgType::FwdX), VirtualLane::H);
}

} // namespace
} // namespace piranha
