/**
 * @file
 * Design-space exploration example: sweep the number of on-chip CPUs
 * and the number of chips, for both workloads, printing throughput —
 * the kind of study §4 alludes to ("a relatively wide design space if
 * one considers increasingly complex CPUs in a chip-multiprocessing
 * system").
 */

#include <iostream>

#include "core/piranha.h"
#include "stats/stats.h"

int
main()
{
    using namespace piranha;

    std::cout << "Piranha design-space sweep (throughput, work/s)\n\n";

    TextTable t({"Workload", "Chips", "CPUs/chip", "Throughput",
                 "Busy", "Miss stall"});
    for (int w = 0; w < 2; ++w) {
        for (unsigned chips : {1u, 2u}) {
            for (unsigned cpus : {1u, 2u, 4u, 8u}) {
                std::unique_ptr<Workload> wl;
                std::uint64_t work;
                if (w == 0) {
                    wl = std::make_unique<OltpWorkload>();
                    work = 120;
                } else {
                    wl = std::make_unique<DssWorkload>();
                    work = 8;
                }
                PiranhaSystem sys(configPn(cpus, chips));
                RunResult r = sys.run(*wl, work);
                t.addRow({r.workload, strFormat("%u", chips),
                          strFormat("%u", cpus),
                          TextTable::fmt(r.throughput(), 0),
                          TextTable::fmt(100 * r.busyFrac, 1) + "%",
                          TextTable::fmt(100 * r.l2MissStallFrac, 1) +
                              "%"});
            }
        }
    }
    t.print(std::cout);
    return 0;
}
