/**
 * @file
 * Extensibility example: a user-defined workload. Implements a
 * pointer-chasing microbenchmark (the pathological case for Piranha's
 * simple cores and the best case for latency tolerance) by deriving
 * from Workload/InstrStream, and compares P8 with the OOO baseline —
 * illustrating §7's point that Piranha is the wrong choice for
 * workloads without thread-level parallelism.
 */

#include <cstdio>

#include "core/piranha.h"

using namespace piranha;

namespace {

/** Dependent loads over a large ring: no ILP, no spatial locality. */
class PointerChase : public Workload, public InstrStream
{
  public:
    explicit PointerChase(std::uint64_t hops_target)
        : _target(hops_target)
    {
    }

    const std::string &name() const override { return _name; }
    WorkloadIlp ilp() const override
    {
        // Dependent loads: a wide window cannot overlap anything.
        return WorkloadIlp{1.1, 0.05};
    }

    std::unique_ptr<InstrStream>
    makeStream(EventQueue &, unsigned cpu, unsigned, std::uint64_t target,
               NodeId, const AddressMap &) override
    {
        auto s = std::make_unique<PointerChase>(target);
        s->_rng = Pcg32(99, cpu);
        return s;
    }

    StreamOp
    next() override
    {
        if (_hops >= _target)
            return StreamOp{};
        StreamOp op;
        if (_emitCompute) {
            op.kind = StreamOp::Kind::Compute;
            op.count = 2;
        } else {
            op.kind = StreamOp::Kind::Load;
            // The next pointer is data-dependent: model with a
            // reproducible random walk over a 64 MB ring.
            _cursor = (_cursor * 6364136223846793005ULL + 13) %
                      (64ull << 20);
            op.addr = 0x600000000 + lineAlign(_cursor);
            ++_hops;
        }
        op.pc = 0x12000000;
        _emitCompute = !_emitCompute;
        return op;
    }

    std::uint64_t workDone() const override { return _hops; }

  private:
    std::string _name = "pointer-chase";
    std::uint64_t _target;
    std::uint64_t _hops = 0;
    std::uint64_t _cursor = 1;
    bool _emitCompute = false;
    Pcg32 _rng{1, 1};
};

} // namespace

int
main()
{
    PointerChase wl(0);
    PiranhaSystem p8(configP8());
    PiranhaSystem ooo(configOOO());
    // Same total pointer hops on both systems.
    RunResult rp = p8.run(wl, 2000);
    RunResult ro = ooo.run(wl, 16000);

    std::printf("pointer-chase (no TLP in a single chain, but 8 "
                "independent chains on P8):\n");
    std::printf("  P8 : %.0f hops/ms\n", rp.throughput() / 1e3);
    std::printf("  OOO: %.0f hops/ms\n", ro.throughput() / 1e3);
    std::printf("\nwith a single chain (one thread), Piranha loses "
                "its advantage:\n");
    PiranhaSystem p1(configP1());
    RunResult r1 = p1.run(wl, 16000);
    std::printf("  P1 : %.0f hops/ms (vs OOO %.0f) — the paper's "
                "point about SPEC-style\n  single-thread work "
                "(§7: Piranha is the wrong choice there).\n",
                r1.throughput() / 1e3, ro.throughput() / 1e3);
    return 0;
}
