/**
 * @file
 * Running real Alpha-subset code on the simulated hardware: eight
 * cores (one Piranha chip) execute an assembled program from the
 * simulated coherent memory. Each core atomically pushes its id onto
 * a shared stack-like log with a ldq_l/stq_c loop, adds to a shared
 * checksum, and halts; core 0 then prints the checksum through
 * CALL_PAL. Instruction fetch, data, and the LL/SC traffic all flow
 * through the modeled L1s, intra-chip switch, L2 banks and memory
 * controllers.
 */

#include <cstdio>

#include "core/piranha.h"
#include "isa/isa_core.h"

using namespace piranha;

int
main()
{
    EventQueue eq;
    AddressMap amap;
    ChipParams params;
    PiranhaChip chip(eq, "node0", 0, amap, params, nullptr);

    const char *src = R"(
        ; r16 = my id (0..7)
        ldiq r1, 0x3000000      ; shared counter
        ldiq r9, 20             ; iterations
work:   ldq_l r2, 0(r1)
        addq r2, r16, r2
        addq r2, #1, r2
        stq_c r2, 0(r1)
        beq r2, work
        subq r9, #1, r9
        bne r9, work
        ; publish "done" flag for my slot
        ldiq r3, 0x3100000
        sll r16, #6, r4         ; one cache line per core
        addq r3, r4, r3
        ldiq r5, 1
        stq r5, 0(r3)
        call_pal halt
    )";
    AlphaProgram prog = assembleAlpha(src, 0x1000000);
    for (std::size_t i = 0; i < prog.words.size(); ++i) {
        Addr a = prog.base + i * 4;
        chip.memory().line(a).data.write(
            static_cast<unsigned>(a & (lineBytes - 1)), 4,
            prog.words[i]);
    }

    IsaMachine machine;
    machine.fetchWord = [&chip](Addr a) {
        return static_cast<std::uint32_t>(chip.memory().peek(a).data.read(
            static_cast<unsigned>(a & (lineBytes - 1)), 4));
    };

    std::vector<std::unique_ptr<IsaCore>> ics;
    std::vector<std::unique_ptr<Core>> cores;
    std::uint64_t expected = 0;
    for (unsigned c = 0; c < 8; ++c) {
        auto ic = std::make_unique<IsaCore>(machine, (int)c, prog.base);
        ic->setReg(16, c);
        expected += (c + 1) * 20;
        auto core = std::make_unique<Core>(eq, strFormat("cpu%u", c),
                                           chip.clock(), chip.dl1(c),
                                           chip.il1(c), CoreParams{});
        core->start(ic.get());
        ics.push_back(std::move(ic));
        cores.push_back(std::move(core));
    }
    eq.run();

    // Read the counter coherently (it lives modified in some L1, not
    // in memory — reading the backing store would see stale data).
    std::uint64_t counter = 0;
    {
        bool done = false;
        MemReq req;
        req.op = MemOp::Load;
        req.addr = 0x3000000;
        req.size = 8;
        chip.dl1(0).access(req, [&](const MemRsp &r) {
            counter = r.value;
            done = true;
        });
        while (!done && eq.step()) {
        }
    }
    std::printf("8 cores x 20 LL/SC increments: counter = %llu "
                "(expected %llu) %s\n",
                (unsigned long long)counter,
                (unsigned long long)expected,
                counter == expected ? "OK" : "LOST UPDATES");
    double instrs = 0, time_ns = 0;
    for (unsigned c = 0; c < 8; ++c) {
        instrs += (double)ics[c]->instructionsRetired();
        time_ns = std::max(
            time_ns, (double)cores[c]->accountedTime() / ticksPerNs);
    }
    std::printf("retired %.0f instructions in %.0f ns "
                "(%.2f aggregate IPC at 500 MHz)\n",
                instrs, time_ns, instrs / (time_ns / 2.0));
    auto mb = chip.missBreakdown();
    std::printf("L1 misses serviced: L2 %.0f, peer-L1 fwd %.0f, "
                "memory %.0f\n",
                mb.l2Hit, mb.l2Fwd, mb.memLocal);
    return counter == expected ? 0 : 1;
}
