/**
 * @file
 * Quickstart: build a single-chip Piranha system (the paper's P8
 * prototype configuration), run the OLTP workload, and print the
 * execution-time breakdown and L1-miss service mix — the minimal
 * end-to-end use of the public API.
 */

#include <cstdio>

#include "core/piranha.h"

int
main()
{
    using namespace piranha;

    // The 8-CPU Piranha prototype (Table 1, P8 column).
    SystemConfig cfg = configP8();
    PiranhaSystem sys(cfg);

    // TPC-B-like OLTP: 8 server processes per CPU, 40 branches.
    OltpWorkload oltp;

    // Run 100 transactions on each of the 8 CPUs.
    RunResult r = sys.run(oltp, 100);

    std::printf("config     : %s\n", r.config.c_str());
    std::printf("workload   : %s\n", r.workload.c_str());
    std::printf("transactions: %llu\n",
                static_cast<unsigned long long>(r.work));
    std::printf("exec time  : %.3f ms (%.0f txn/s)\n",
                static_cast<double>(r.execTime) * 1e-9,
                r.throughput());
    std::printf("breakdown  : busy %.1f%%  L2-hit stall %.1f%%  "
                "L2-miss stall %.1f%%\n",
                100 * r.busyFrac, 100 * r.l2HitStallFrac,
                100 * r.l2MissStallFrac);
    double tot = r.misses.total();
    if (tot > 0) {
        std::printf("L1 misses  : L2 %.0f%%  peer-L1 %.0f%%  "
                    "memory %.0f%%\n",
                    100 * r.misses.l2Hit / tot,
                    100 * r.misses.l2Fwd / tot,
                    100 *
                        (r.misses.memLocal + r.misses.memRemote +
                         r.misses.remoteDirty) /
                        tot);
    }
    std::printf("RDRAM open-page hit rate: %.1f%%\n",
                100 * r.rdramPageHitRate);
    return 0;
}
