/**
 * @file
 * Coherence explorer: drives the memory system directly through the
 * L1 ports of a three-node system (no CPU model) and narrates where
 * each access is serviced and how long it takes — local memory with
 * a clean-exclusive grant, L1-to-L1 forwarding on a chip, a 2-hop
 * remote read, a 3-hop read of a remote-dirty line, an upgrade, and
 * a cruise-missile invalidation — then prints the protocol engines'
 * microcode statistics.
 */

#include <cstdio>

#include "core/piranha.h"

using namespace piranha;

namespace {

struct Explorer
{
    EventQueue eq;
    AddressMap amap;
    std::unique_ptr<Network> net;
    std::vector<std::unique_ptr<PiranhaChip>> chips;

    explicit Explorer(unsigned nodes)
    {
        amap.numNodes = nodes;
        net = std::make_unique<Network>(eq, "net");
        ChipParams params; // P8-style defaults
        for (unsigned n = 0; n < nodes; ++n)
            chips.push_back(std::make_unique<PiranhaChip>(
                eq, strFormat("node%u", n), static_cast<NodeId>(n),
                amap, params, net.get()));
        for (unsigned n = 0; n < nodes; ++n) {
            PiranhaChip *c = chips[n].get();
            net->addNode(static_cast<NodeId>(n),
                         [c](const NetPacket &p) { c->deliverNet(p); });
        }
        Network::buildFullyConnected(*net);
    }

    double
    access(unsigned node, unsigned cpu, MemOp op, Addr a,
           const char *what)
    {
        Tick start = eq.curTick();
        bool done = false;
        FillSource src{};
        MemReq req;
        req.op = op;
        req.addr = a;
        req.size = 8;
        req.value = 0xbeef;
        chips[node]->dl1(cpu).access(req, [&](const MemRsp &r) {
            done = true;
            src = r.source;
        });
        while (!done && eq.step()) {
        }
        double ns = double(eq.curTick() - start) / ticksPerNs;
        std::printf("  %-44s %8.1f ns  (%s)\n", what, ns,
                    fillSourceName(src));
        eq.run(eq.curTick() + 10 * ticksPerUs); // settle
        return ns;
    }
};

} // namespace

int
main()
{
    Explorer x(3);
    Addr a = 0x5000000;
    while (x.amap.home(a) != 0)
        a += 1ULL << x.amap.pageShift;

    std::printf("line %#llx, homed at node 0\n\n",
                (unsigned long long)a);
    x.access(0, 0, MemOp::Load, a,
             "node0.cpu0 load (local memory, clean-excl)");
    x.access(0, 0, MemOp::Load, a, "node0.cpu0 load again (L1 hit)");
    x.access(0, 3, MemOp::Load, a,
             "node0.cpu3 load (L1-to-L1 forward)");
    x.access(1, 0, MemOp::Load, a, "node1.cpu0 load (2-hop remote)");
    x.access(1, 0, MemOp::Store, a,
             "node1.cpu0 store (upgrade + invalidations)");
    x.access(2, 0, MemOp::Load, a,
             "node2.cpu0 load (3-hop, remote dirty)");
    x.access(0, 0, MemOp::Store, a,
             "node0.cpu0 store (home reclaims, CMI invals)");

    std::printf("\nprotocol engines:\n");
    for (unsigned n = 0; n < 3; ++n) {
        auto &he = x.chips[n]->homeEngine();
        auto &re = x.chips[n]->remoteEngine();
        std::printf("  node%u HE: %4.0f threads, %5.0f uinstrs "
                    "(%.1f/transaction)   RE: %4.0f threads, %5.0f "
                    "uinstrs\n",
                    n, he.statThreads.value(), he.statInstrs.value(),
                    he.statThreads.value()
                        ? he.statInstrs.value() / he.statThreads.value()
                        : 0.0,
                    re.statThreads.value(), re.statInstrs.value());
    }
    std::printf("\nmicrocode: home %zu words (%zu instrs), remote %zu "
                "words (%zu instrs), budget 1024\n",
                x.chips[0]->homeEngine().program().mem.size(),
                x.chips[0]->homeEngine().program().instructionCount(),
                x.chips[0]->remoteEngine().program().mem.size(),
                x.chips[0]->remoteEngine().program().instructionCount());
    return 0;
}
